// Open-addressing hash tables keyed by 64-bit tokens.
//
// The engine's hot per-peer state (inflight packets, rendezvous transfers,
// pending gets, stripe reassembly offsets) was originally std::map: every
// insert is a node allocation, every lookup a pointer chase through a
// red-black tree, and a peer that once held a burst of flows keeps the
// allocator churn forever. At the million-flow scale the per-decision cost
// of those trees dominates the optimizer itself (cf. Ros-Giralt et al. on
// line-rate network analysis structures).
//
// TokenTable is the replacement: linear-probe open addressing over a flat
// slot array, power-of-two capacity, separate one-byte state array (keys
// are arbitrary u64s — sequence numbers start at 0 — so no key value can
// double as the empty sentinel), backward-shift deletion (no tombstones, so
// load never degrades), and automatic shrink when a burst drains (bounded
// per-peer memory is the point; a table that grew to 64k slots for one
// incast must not pin that RAM for the connection's lifetime).
//
// NOT thread-safe; every instance lives under its peer's shard lock.
// Values are MOVED on rehash and backward-shift, so no pointer or reference
// into the table survives a mutating call on the same table. The engine's
// call sites are audited for this (values held across calls are only ever
// used before the next same-table mutation).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

#include "util/assert.hpp"

namespace mado::core {

/// Shared sizing/telemetry knobs, wired once per PeerState.
struct TokenTableOpts {
  /// Smallest capacity (power of two) the table keeps when shrinking.
  std::size_t min_capacity = 16;
  /// Shrink the slot array when load falls to <= capacity/8 (down to
  /// min_capacity). Disable for tables that oscillate around a boundary.
  bool shrink = true;
  /// Optional counters (StatsRegistry cells): rehash-up / rehash-down.
  std::atomic<std::uint64_t>* growths = nullptr;
  std::atomic<std::uint64_t>* shrinks = nullptr;
};

namespace detail {

/// splitmix64 finalizer: tokens are often sequential (packet seq, message
/// ids), and linear probing needs their hashes spread across the table.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace detail

template <typename V>
class TokenTable {
 public:
  TokenTable() = default;
  explicit TokenTable(TokenTableOpts opts) : opts_(opts) {
    if (opts_.min_capacity < 2) opts_.min_capacity = 2;
    // Round min_capacity up to a power of two.
    while ((opts_.min_capacity & (opts_.min_capacity - 1)) != 0)
      ++opts_.min_capacity;
  }
  ~TokenTable() { clear(); }
  TokenTable(const TokenTable&) = delete;
  TokenTable& operator=(const TokenTable&) = delete;
  TokenTable(TokenTable&& o) noexcept
      : opts_(o.opts_),
        slots_(std::move(o.slots_)),
        state_(std::move(o.state_)),
        cap_(o.cap_),
        size_(o.size_) {
    o.cap_ = o.size_ = 0;
  }
  TokenTable& operator=(TokenTable&& o) noexcept {
    if (this != &o) {
      clear();
      opts_ = o.opts_;
      slots_ = std::move(o.slots_);
      state_ = std::move(o.state_);
      cap_ = o.cap_;
      size_ = o.size_;
      o.cap_ = o.size_ = 0;
    }
    return *this;
  }

  /// Late option wiring (PeerState members cannot pass ctor args inline).
  /// Only valid before the first insert.
  void set_opts(TokenTableOpts opts) {
    MADO_ASSERT(cap_ == 0 && size_ == 0);
    opts_ = opts;
    if (opts_.min_capacity < 2) opts_.min_capacity = 2;
    while ((opts_.min_capacity & (opts_.min_capacity - 1)) != 0)
      ++opts_.min_capacity;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }

  V* find(std::uint64_t key) {
    if (size_ == 0) return nullptr;
    const std::size_t mask = cap_ - 1;
    for (std::size_t i = detail::mix64(key) & mask;; i = (i + 1) & mask) {
      if (state_[i] == kEmpty) return nullptr;
      if (slots_[i].key == key) return std::addressof(slots_[i].value);
    }
  }
  const V* find(std::uint64_t key) const {
    return const_cast<TokenTable*>(this)->find(key);
  }
  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  /// Insert {key, value} if absent. Returns {slot value, inserted}; on a
  /// hit the existing value is returned untouched (try_emplace semantics)
  /// and `value`'s pieces are not consumed.
  template <typename... Args>
  std::pair<V*, bool> emplace(std::uint64_t key, Args&&... args) {
    if (cap_ == 0 || (size_ + 1) * 4 > cap_ * 3) grow();
    const std::size_t mask = cap_ - 1;
    std::size_t i = detail::mix64(key) & mask;
    for (; state_[i] != kEmpty; i = (i + 1) & mask) {
      if (slots_[i].key == key) return {std::addressof(slots_[i].value), false};
    }
    ::new (static_cast<void*>(&slots_[i]))
        Slot{key, V(std::forward<Args>(args)...)};
    state_[i] = kFull;
    ++size_;
    return {std::addressof(slots_[i].value), true};
  }

  /// Insert or overwrite (std::map operator[]= equivalent).
  V* insert_or_assign(std::uint64_t key, V&& value) {
    auto [slot, inserted] = emplace(key, std::move(value));
    if (!inserted) *slot = std::move(value);
    return slot;
  }

  bool erase(std::uint64_t key) {
    if (size_ == 0) return false;
    const std::size_t mask = cap_ - 1;
    std::size_t i = detail::mix64(key) & mask;
    for (; state_[i] != kEmpty; i = (i + 1) & mask) {
      if (slots_[i].key == key) break;
    }
    if (state_[i] == kEmpty) return false;
    slots_[i].~Slot();
    state_[i] = kEmpty;
    --size_;
    backshift(i);
    maybe_shrink();
    return true;
  }

  /// Visit every entry as f(key, value&). The table must not be mutated
  /// from inside `f` (backward-shift would skip or repeat entries).
  template <typename F>
  void for_each(F&& f) {
    for (std::size_t i = 0; i < cap_; ++i)
      if (state_[i] == kFull) f(slots_[i].key, slots_[i].value);
  }
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < cap_; ++i)
      if (state_[i] == kFull) f(slots_[i].key, slots_[i].value);
  }

  /// Destroy every entry and release the slot arrays (maximal shrink —
  /// a cleared table holds no memory at all).
  void clear() {
    for (std::size_t i = 0; i < cap_ && size_ > 0; ++i) {
      if (state_[i] == kFull) {
        slots_[i].~Slot();
        state_[i] = kEmpty;
        --size_;
      }
    }
    size_ = 0;
    cap_ = 0;
    slots_.reset();
    state_.reset();
  }

 private:
  struct Slot {
    std::uint64_t key;
    V value;
  };
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;

  void grow() { rehash(cap_ == 0 ? opts_.min_capacity : cap_ * 2, true); }

  void maybe_shrink() {
    if (!opts_.shrink || cap_ <= opts_.min_capacity) return;
    if (size_ * 8 > cap_) return;
    std::size_t target = cap_;
    while (target > opts_.min_capacity && size_ * 4 <= target) target /= 2;
    if (target != cap_) rehash(target, false);
  }

  void rehash(std::size_t new_cap, bool growing) {
    auto old_slots = std::move(slots_);
    auto old_state = std::move(state_);
    const std::size_t old_cap = cap_;
    slots_.reset(static_cast<Slot*>(
        ::operator new(new_cap * sizeof(Slot), std::align_val_t{alignof(Slot)})));
    state_ = std::make_unique<std::uint8_t[]>(new_cap);
    for (std::size_t i = 0; i < new_cap; ++i) state_[i] = kEmpty;
    cap_ = new_cap;
    const std::size_t mask = new_cap - 1;
    for (std::size_t i = 0; i < old_cap; ++i) {
      if (old_state[i] != kFull) continue;
      std::size_t j = detail::mix64(old_slots[i].key) & mask;
      while (state_[j] != kEmpty) j = (j + 1) & mask;
      ::new (static_cast<void*>(&slots_[j])) Slot{std::move(old_slots[i])};
      state_[j] = kFull;
      old_slots[i].~Slot();
    }
    if (growing) {
      if (opts_.growths)
        opts_.growths->fetch_add(1, std::memory_order_relaxed);
    } else if (opts_.shrinks) {
      opts_.shrinks->fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Backward-shift deletion: walk the probe chain after the freed slot and
  /// move back every entry whose home position does not lie strictly after
  /// the hole (classic Robin-Hood-without-tombstones compaction).
  void backshift(std::size_t hole) {
    const std::size_t mask = cap_ - 1;
    std::size_t j = (hole + 1) & mask;
    while (state_[j] == kFull) {
      const std::size_t home = detail::mix64(slots_[j].key) & mask;
      // Move j back iff the hole lies within [home, j] in probe order.
      if (((j - home) & mask) >= ((j - hole) & mask)) {
        ::new (static_cast<void*>(&slots_[hole])) Slot{std::move(slots_[j])};
        state_[hole] = kFull;
        slots_[j].~Slot();
        state_[j] = kEmpty;
        hole = j;
      }
      j = (j + 1) & mask;
    }
  }

  struct SlotDeleter {
    void operator()(Slot* p) const {
      // Entries are destroyed individually before release.
      ::operator delete(p, std::align_val_t{alignof(Slot)});
    }
  };

  TokenTableOpts opts_{};
  std::unique_ptr<Slot[], SlotDeleter> slots_;
  std::unique_ptr<std::uint8_t[]> state_;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
};

/// Set of 64-bit tokens (stripe reassembly offsets, rendezvous done-dedup).
class TokenSet {
 public:
  TokenSet() = default;
  explicit TokenSet(TokenTableOpts opts) : t_(opts) {}
  TokenSet(TokenSet&&) noexcept = default;
  TokenSet& operator=(TokenSet&&) noexcept = default;

  void set_opts(TokenTableOpts opts) { t_.set_opts(opts); }

  std::size_t size() const { return t_.size(); }
  bool empty() const { return t_.empty(); }
  std::size_t capacity() const { return t_.capacity(); }
  bool contains(std::uint64_t key) const { return t_.contains(key); }
  /// Returns true if newly inserted.
  bool insert(std::uint64_t key) { return t_.emplace(key).second; }
  bool erase(std::uint64_t key) { return t_.erase(key); }
  void clear() { t_.clear(); }
  template <typename F>
  void for_each(F&& f) const {
    t_.for_each([&f](std::uint64_t k, const Unit&) { f(k); });
  }

 private:
  struct Unit {};
  TokenTable<Unit> t_;
};

}  // namespace mado::core
