// SmallVector<T, N>: vector with inline storage for the first N elements.
//
// Packet builds typically gather a handful of segments; keeping those inline
// avoids a heap allocation per packet on the hot path. Only the operations
// the library needs are provided; the container is not a full std::vector
// replacement.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/assert.hpp"

namespace mado {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) {
    reserve(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) push_back(other[i]);
  }

  SmallVector(SmallVector&& other) noexcept { move_from(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (std::size_t i = 0; i < other.size_; ++i) push_back(other[i]);
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { destroy(); }

  T& operator[](std::size_t i) {
    MADO_ASSERT(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    MADO_ASSERT(i < size_);
    return data()[i];
  }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  T* data() { return heap_ ? heap_ : inline_ptr(); }
  const T* data() const { return heap_ ? heap_ : inline_ptr(); }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }
  bool is_inline() const { return heap_ == nullptr; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow(cap_ * 2);
    T* slot = data() + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    MADO_ASSERT(size_ > 0);
    data()[--size_].~T();
  }

  /// Insert `v` before `pos`. Invalidates iterators. Returns the iterator
  /// to the inserted element.
  iterator insert(iterator pos, T v) {
    const std::size_t idx = static_cast<std::size_t>(pos - begin());
    MADO_ASSERT(idx <= size_);
    emplace_back(std::move(v));  // may reallocate; idx stays valid
    T* p = data();
    std::rotate(p + idx, p + size_ - 1, p + size_);
    return p + idx;
  }

  /// Remove the element at `pos`. Invalidates iterators. Returns the
  /// iterator to the element after the removed one.
  iterator erase(iterator pos) {
    const std::size_t idx = static_cast<std::size_t>(pos - begin());
    MADO_ASSERT(idx < size_);
    T* p = data();
    for (std::size_t i = idx + 1; i < size_; ++i) p[i - 1] = std::move(p[i]);
    pop_back();
    return data() + idx;
  }

  void clear() {
    T* p = data();
    for (std::size_t i = 0; i < size_; ++i) p[i].~T();
    size_ = 0;
  }

  void reserve(std::size_t n) {
    if (n > cap_) grow(n);
  }

  void resize(std::size_t n) {
    if (n < size_) {
      T* p = data();
      for (std::size_t i = n; i < size_; ++i) p[i].~T();
      size_ = n;
    } else {
      reserve(n);
      while (size_ < n) emplace_back();
    }
  }

 private:
  T* inline_ptr() { return std::launder(reinterpret_cast<T*>(inline_storage_)); }
  const T* inline_ptr() const {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  void grow(std::size_t new_cap) {
    new_cap = std::max(new_cap, N + 1);
    T* fresh = static_cast<T*>(::operator new(new_cap * sizeof(T)));
    T* src = data();
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(src[i]));
      src[i].~T();
    }
    if (heap_) ::operator delete(heap_);
    heap_ = fresh;
    cap_ = new_cap;
  }

  void destroy() {
    clear();
    if (heap_) {
      ::operator delete(heap_);
      heap_ = nullptr;
      cap_ = N;
    }
  }

  void move_from(SmallVector&& other) noexcept {
    if (other.heap_) {
      heap_ = other.heap_;
      cap_ = other.cap_;
      size_ = other.size_;
      other.heap_ = nullptr;
      other.cap_ = N;
      other.size_ = 0;
    } else {
      heap_ = nullptr;
      cap_ = N;
      size_ = 0;
      T* src = other.data();
      for (std::size_t i = 0; i < other.size_; ++i) {
        emplace_back(std::move(src[i]));
        src[i].~T();
      }
      other.size_ = 0;
    }
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace mado
