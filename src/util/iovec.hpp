// Gather/scatter segment lists.
//
// A GatherList describes a logical byte sequence as a list of (pointer, len)
// segments. Drivers that advertise gather/scatter capability consume the
// list directly; others require the engine to flatten it into one staging
// buffer first (an extra copy the simulator charges for).
#pragma once

#include <cstddef>
#include <cstring>

#include "util/small_vector.hpp"
#include "util/wire.hpp"

namespace mado {

struct Segment {
  const Byte* data = nullptr;
  std::size_t len = 0;
};

class GatherList {
 public:
  GatherList() = default;

  void add(const void* data, std::size_t len) {
    if (len == 0) return;
    segs_.push_back(Segment{static_cast<const Byte*>(data), len});
    total_ += len;
  }
  void add(ByteSpan s) { add(s.data(), s.size()); }

  std::size_t segment_count() const { return segs_.size(); }
  std::size_t total_bytes() const { return total_; }
  const Segment& operator[](std::size_t i) const { return segs_[i]; }
  const Segment* begin() const { return segs_.begin(); }
  const Segment* end() const { return segs_.end(); }
  bool empty() const { return segs_.empty(); }

  /// Serialize all segments into one contiguous buffer.
  Bytes flatten() const {
    Bytes out;
    out.reserve(total_);
    for (const Segment& s : segs_) out.insert(out.end(), s.data, s.data + s.len);
    return out;
  }

  /// Copy all segments into caller-provided memory (must hold total_bytes()).
  void flatten_into(void* dst) const {
    auto* p = static_cast<Byte*>(dst);
    for (const Segment& s : segs_) {
      std::memcpy(p, s.data, s.len);
      p += s.len;
    }
  }

  void clear() {
    segs_.clear();
    total_ = 0;
  }

 private:
  SmallVector<Segment, 8> segs_;
  std::size_t total_ = 0;
};

/// Scatter a contiguous byte span across a list of destination buffers.
struct ScatterDest {
  Byte* data = nullptr;
  std::size_t len = 0;
};

inline void scatter(ByteSpan src, std::span<const ScatterDest> dests) {
  std::size_t off = 0;
  for (const ScatterDest& d : dests) {
    MADO_CHECK(off + d.len <= src.size());
    std::memcpy(d.data, src.data() + off, d.len);
    off += d.len;
  }
  MADO_CHECK_MSG(off == src.size(), "scatter length mismatch");
}

}  // namespace mado
