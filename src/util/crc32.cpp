#include "util/crc32.hpp"

#include <array>

namespace mado {
namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

const std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

void Crc32::update(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = state_;
  for (std::size_t i = 0; i < len; ++i)
    c = kTable[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  state_ = c;
}

}  // namespace mado
