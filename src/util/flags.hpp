// Minimal command-line flag parser for the example/CLI binaries.
//
// Accepted forms: --key=value, --key value, --switch (boolean true),
// and bare positionals. No registration step: callers query by name with a
// default. Unknown flags are kept (queryable), so tools can layer.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace mado {

class Flags {
 public:
  Flags(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg.erase(0, 2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  bool has(const std::string& name) const { return values_.count(name) != 0; }

  std::string get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }

  std::int64_t get_int(const std::string& name, std::int64_t fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    try {
      return std::stoll(it->second);
    } catch (...) {
      MADO_CHECK_MSG(false, "flag --" << name << " expects an integer, got '"
                                      << it->second << "'");
    }
    return fallback;
  }

  double get_double(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (...) {
      MADO_CHECK_MSG(false, "flag --" << name << " expects a number, got '"
                                      << it->second << "'");
    }
    return fallback;
  }

  bool get_bool(const std::string& name, bool fallback = false) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    return it->second != "false" && it->second != "0" && it->second != "no";
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace mado
