#include "util/stats.hpp"

#include <sstream>

namespace mado {

void StatsRegistry::accumulate_counters(
    std::map<std::string, std::uint64_t, std::less<>>& out) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  for (const auto& [name, v] : counters_)
    out[name] += v.load(std::memory_order_relaxed);
  for (const StatsRegistry* c : children_) c->accumulate_counters(out);
}

void StatsRegistry::accumulate_histograms(
    std::map<std::string, Log2Histogram, std::less<>>& out) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  for (const auto& [name, h] : histograms_) out[name].merge_from(h);
  for (const StatsRegistry* c : children_) c->accumulate_histograms(out);
}

std::map<std::string, std::uint64_t, std::less<>> StatsRegistry::counters()
    const {
  std::map<std::string, std::uint64_t, std::less<>> out;
  accumulate_counters(out);
  return out;
}

std::map<std::string, Log2Histogram, std::less<>> StatsRegistry::histograms()
    const {
  std::map<std::string, Log2Histogram, std::less<>> out;
  accumulate_histograms(out);
  return out;
}

const Log2Histogram* StatsRegistry::histogram(std::string_view name) const {
  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    if (children_.empty()) {
      auto it = histograms_.find(name);
      return it == histograms_.end() ? nullptr : &it->second;
    }
  }
  // Children attached: merge own + all shards into a cache node whose
  // address is stable across calls, and hand that out. Contents are a
  // snapshot as of this call.
  Log2Histogram merged;
  bool found = false;
  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    auto it = histograms_.find(name);
    if (it != histograms_.end()) {
      merged.merge_from(it->second);
      found = true;
    }
    for (const StatsRegistry* c : children_) {
      // Shards are leaf registries in practice, but recurse for generality.
      if (const Log2Histogram* h = c->histogram(name)) {
        merged.merge_from(*h);
        found = true;
      }
    }
  }
  if (!found) return nullptr;
  std::lock_guard<std::mutex> lk(merge_mu_);
  Log2Histogram& slot = merge_cache_[std::string(name)];
  slot = merged;
  return &slot;
}

std::string StatsRegistry::to_string() const {
  const auto counters = this->counters();
  const auto histograms = this->histograms();
  std::ostringstream os;
  for (const auto& [name, value] : counters)
    os << name << "=" << value << "\n";
  for (const auto& [name, h] : histograms)
    os << name << ": count=" << h.count() << " mean=" << h.mean()
       << " p50<=" << h.quantile_upper_bound(0.50)
       << " p99<=" << h.quantile_upper_bound(0.99) << "\n";
  return os.str();
}

}  // namespace mado
