#include "util/stats.hpp"

#include <sstream>

namespace mado {

std::string StatsRegistry::to_string() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_)
    os << name << "=" << value << "\n";
  for (const auto& [name, h] : histograms_)
    os << name << ": count=" << h.count() << " mean=" << h.mean()
       << " p50<=" << h.quantile_upper_bound(0.50)
       << " p99<=" << h.quantile_upper_bound(0.99) << "\n";
  return os.str();
}

}  // namespace mado
