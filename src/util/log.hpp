// Minimal leveled logger. Off by default (Warn); tests and debugging sessions
// raise the level via mado::set_log_level or the MADO_LOG env var
// ("trace"|"debug"|"info"|"warn"|"error").
//
// The macro evaluates its stream expression only when the level is enabled,
// so trace logging in the optimizer hot path costs one branch when disabled.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace mado {

enum class LogLevel : int { Trace = 0, Debug, Info, Warn, Error, Off };

LogLevel log_level();
void set_log_level(LogLevel lvl);
/// Reads MADO_LOG once and applies it; called lazily on first query.
void log_line(LogLevel lvl, const std::string& msg);

}  // namespace mado

#define MADO_LOG(lvl, expr)                                      \
  do {                                                           \
    if (static_cast<int>(lvl) >= static_cast<int>(::mado::log_level())) { \
      std::ostringstream mado_log_os_;                           \
      mado_log_os_ << expr;                                      \
      ::mado::log_line(lvl, mado_log_os_.str());                 \
    }                                                            \
  } while (0)

#define MADO_TRACE(expr) MADO_LOG(::mado::LogLevel::Trace, expr)
#define MADO_DEBUG(expr) MADO_LOG(::mado::LogLevel::Debug, expr)
#define MADO_INFO(expr) MADO_LOG(::mado::LogLevel::Info, expr)
#define MADO_WARN(expr) MADO_LOG(::mado::LogLevel::Warn, expr)
#define MADO_ERROR(expr) MADO_LOG(::mado::LogLevel::Error, expr)
