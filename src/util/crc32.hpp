// CRC-32 (IEEE 802.3 polynomial, reflected) used to protect packet headers
// on byte-moving drivers. Table is generated at static-init time.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/wire.hpp"

namespace mado {

/// Incremental CRC-32. Usage: Crc32 c; c.update(p, n); c.value();
class Crc32 {
 public:
  void update(const void* data, std::size_t len);
  void update(ByteSpan data) { update(data.data(), data.size()); }
  std::uint32_t value() const { return ~state_; }
  void reset() { state_ = 0xffffffffu; }

  static std::uint32_t of(const void* data, std::size_t len) {
    Crc32 c;
    c.update(data, len);
    return c.value();
  }
  static std::uint32_t of(ByteSpan data) { return of(data.data(), data.size()); }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

}  // namespace mado
