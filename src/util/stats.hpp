// Statistics primitives: counters, log2-bucketed histograms, Welford
// mean/variance accumulation, and a named-stats registry that the engine
// exposes so benchmarks can report aggregation ratios, transaction counts,
// latency distributions, etc.
//
// Since the engine-lock sharding, StatsRegistry is thread-safe and
// composable: each peer shard owns a registry and the engine's root registry
// aggregates them on read (counters()/histograms()/counter() sum own values
// plus all registered children). Mutation is wait-free after the first bump
// of a name: values live in std::atomic cells behind map nodes whose
// addresses are stable, so hot paths can cache a handle() reference and
// bump it without any lookup or lock at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.hpp"

namespace mado {

/// Online mean/variance (Welford). Not thread-safe (single-writer use only).
class Welford {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }
  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  /// NaN when no samples have been added — 0 would masquerade as a real
  /// observation and silently poison "min latency" style reports.
  double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0, m2_ = 0, min_ = 0, max_ = 0;
};

/// Histogram with log2 buckets: bucket i counts values in [2^i, 2^(i+1)).
/// Value 0 lands in bucket 0. Suited to latency (ns) and size distributions.
///
/// add() is thread-safe (relaxed atomics: per-bucket counts, total count and
/// sum are each independently exact; a reader racing a writer may see a sum
/// from one more/fewer sample than the count — harmless for monitoring).
/// Copying takes a relaxed snapshot, so value-semantics users keep working.
class Log2Histogram {
 public:
  static constexpr int kBuckets = 64;

  Log2Histogram() = default;
  Log2Histogram(const Log2Histogram& o) { copy_from(o); }
  Log2Histogram& operator=(const Log2Histogram& o) {
    if (this != &o) copy_from(o);
    return *this;
  }

  void add(std::uint64_t v) {
    buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Fold another histogram's (snapshot of) contents into this one; used by
  /// the registry's cross-shard aggregation.
  void merge_from(const Log2Histogram& o) {
    for (int i = 0; i < kBuckets; ++i)
      buckets_[static_cast<std::size_t>(i)].fetch_add(
          o.bucket(i), std::memory_order_relaxed);
    count_.fetch_add(o.count(), std::memory_order_relaxed);
    sum_.fetch_add(o.sum(), std::memory_order_relaxed);
  }

  static int bucket_of(std::uint64_t v) {
    if (v <= 1) return 0;
    return 63 - static_cast<int>(__builtin_clzll(v));
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0;
  }
  std::uint64_t bucket(int i) const {
    return buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

  /// Upper bound of the bucket containing the q-quantile (q in [0,1]).
  std::uint64_t quantile_upper_bound(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    auto target = static_cast<std::uint64_t>(q * static_cast<double>(n));
    if (target >= n) target = n - 1;  // q = 1.0 → last sample
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += bucket(i);
      if (seen > target) return i >= 63 ? ~0ull : (1ull << (i + 1)) - 1;
    }
    return ~0ull;
  }

  /// Zero all cells, keeping the object in place (registry reset()).
  void clear() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  void copy_from(const Log2Histogram& o) {
    for (int i = 0; i < kBuckets; ++i)
      buckets_[static_cast<std::size_t>(i)].store(o.bucket(i),
                                                  std::memory_order_relaxed);
    count_.store(o.count(), std::memory_order_relaxed);
    sum_.store(o.sum(), std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Named counters + histograms. Thread-safe: the maps' *structure* is
/// guarded by a shared_mutex (unique only on the first bump of a new name);
/// the *values* are atomics behind stable map nodes, so concurrent inc() /
/// observe() after creation are lock-free writes under a shared lock.
///
/// Lookups are transparent (string_view keys, std::less<>): bumping an
/// existing counter performs no heap allocation, which keeps StatsRegistry
/// safe to use from the optimizer's zero-allocation decision loop. Only the
/// FIRST bump of a new name allocates (the map node + key copy). Hot paths
/// can go one step further and cache handle(name) — a stable atomic
/// reference that skips even the map lookup.
///
/// Aggregation: add_child() registers shard registries (the engine's
/// per-peer stats). Readers — counter(), counters(), histogram(),
/// histograms(), to_string() — return own values plus the sum over all
/// children, so monitoring sees one engine-wide view while writers on
/// different peers never share a cacheline. counters()/histograms() return
/// snapshots BY VALUE; histogram() serves merged children data from an
/// internal cache whose node addresses are stable for the registry's
/// lifetime.
class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  void inc(std::string_view name, std::uint64_t by = 1) {
    handle(name).fetch_add(by, std::memory_order_relaxed);
  }

  /// Stable reference to the counter cell for `name` (created on first use).
  /// Valid for the registry's lifetime; survives reset().
  std::atomic<std::uint64_t>& handle(std::string_view name) {
    {
      std::shared_lock<std::shared_mutex> lk(mu_);
      auto it = counters_.find(name);
      if (it != counters_.end()) return it->second;
    }
    std::unique_lock<std::shared_mutex> lk(mu_);
    auto it = counters_.find(name);
    if (it == counters_.end())
      it = counters_
               .emplace(std::piecewise_construct,
                        std::forward_as_tuple(name), std::forward_as_tuple(0))
               .first;
    return it->second;
  }

  /// Own value plus the sum over all children.
  std::uint64_t counter(std::string_view name) const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    std::uint64_t v = 0;
    auto it = counters_.find(name);
    if (it != counters_.end()) v = it->second.load(std::memory_order_relaxed);
    for (const StatsRegistry* c : children_) v += c->counter(name);
    return v;
  }

  void observe(std::string_view name, std::uint64_t v) {
    {
      std::shared_lock<std::shared_mutex> lk(mu_);
      auto it = histograms_.find(name);
      if (it != histograms_.end()) {
        it->second.add(v);
        return;
      }
    }
    std::unique_lock<std::shared_mutex> lk(mu_);
    histograms_[std::string(name)].add(v);
  }

  /// Histogram for `name`, aggregated across children; nullptr when no shard
  /// has observed it. The pointer stays valid for the registry's lifetime,
  /// but with children attached its *contents* are a snapshot taken at this
  /// call (refreshed on the next call).
  const Log2Histogram* histogram(std::string_view name) const;

  /// Snapshot by value, own + children.
  std::map<std::string, std::uint64_t, std::less<>> counters() const;
  std::map<std::string, Log2Histogram, std::less<>> histograms() const;

  /// Register a shard whose values aggregate into this registry's reads.
  /// The child must outlive this registry (the engine owns both). reset()
  /// cascades to children.
  void add_child(StatsRegistry* child) {
    std::unique_lock<std::shared_mutex> lk(mu_);
    children_.push_back(child);
  }

  /// Zero every value (cells stay allocated, handle() refs stay valid) and
  /// cascade to children.
  void reset() {
    std::shared_lock<std::shared_mutex> lk(mu_);
    for (auto& [name, v] : counters_) v.store(0, std::memory_order_relaxed);
    for (auto& [name, h] : histograms_) h.clear();
    for (StatsRegistry* c : children_) c->reset();
  }

  /// Render "name=value" lines, sorted by name (for logs and debugging),
  /// aggregated across children.
  std::string to_string() const;

 private:
  void accumulate_counters(
      std::map<std::string, std::uint64_t, std::less<>>& out) const;
  void accumulate_histograms(
      std::map<std::string, Log2Histogram, std::less<>>& out) const;

  mutable std::shared_mutex mu_;
  std::map<std::string, std::atomic<std::uint64_t>, std::less<>> counters_;
  std::map<std::string, Log2Histogram, std::less<>> histograms_;
  std::vector<StatsRegistry*> children_;

  // histogram() needs to hand out a pointer to *merged* data when children
  // exist; merged snapshots live here so the pointer outlives the call.
  mutable std::mutex merge_mu_;
  mutable std::map<std::string, Log2Histogram, std::less<>> merge_cache_;
};

}  // namespace mado
