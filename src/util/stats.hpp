// Statistics primitives: counters, log2-bucketed histograms, Welford
// mean/variance accumulation, and a named-stats registry that the engine
// exposes so benchmarks can report aggregation ratios, transaction counts,
// latency distributions, etc.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/clock.hpp"

namespace mado {

/// Online mean/variance (Welford).
class Welford {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }
  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  /// NaN when no samples have been added — 0 would masquerade as a real
  /// observation and silently poison "min latency" style reports.
  double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0, m2_ = 0, min_ = 0, max_ = 0;
};

/// Histogram with log2 buckets: bucket i counts values in [2^i, 2^(i+1)).
/// Value 0 lands in bucket 0. Suited to latency (ns) and size distributions.
class Log2Histogram {
 public:
  static constexpr int kBuckets = 64;

  void add(std::uint64_t v) {
    buckets_[bucket_of(v)]++;
    ++count_;
    sum_ += v;
  }

  static int bucket_of(std::uint64_t v) {
    if (v <= 1) return 0;
    return 63 - static_cast<int>(__builtin_clzll(v));
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0;
  }
  std::uint64_t bucket(int i) const { return buckets_[static_cast<std::size_t>(i)]; }

  /// Upper bound of the bucket containing the q-quantile (q in [0,1]).
  std::uint64_t quantile_upper_bound(double q) const {
    if (count_ == 0) return 0;
    auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_));
    if (target >= count_) target = count_ - 1;  // q = 1.0 → last sample
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += buckets_[static_cast<std::size_t>(i)];
      if (seen > target) return i >= 63 ? ~0ull : (1ull << (i + 1)) - 1;
    }
    return ~0ull;
  }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

/// Named counters + histograms. Not thread-safe by design: each engine owns
/// one and all mutation happens under the engine lock.
///
/// Lookups are transparent (string_view keys, std::less<>): bumping an
/// existing counter performs no heap allocation, which keeps StatsRegistry
/// safe to use from the optimizer's zero-allocation decision loop. Only the
/// FIRST bump of a new name allocates (the map node + key copy).
class StatsRegistry {
 public:
  void inc(std::string_view name, std::uint64_t by = 1) {
    auto it = counters_.find(name);
    if (it == counters_.end())
      it = counters_.emplace(std::string(name), std::uint64_t{0}).first;
    it->second += by;
  }
  std::uint64_t counter(std::string_view name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  void observe(std::string_view name, std::uint64_t v) {
    auto it = histograms_.find(name);
    if (it == histograms_.end())
      it = histograms_.emplace(std::string(name), Log2Histogram{}).first;
    it->second.add(v);
  }
  const Log2Histogram* histogram(std::string_view name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, Log2Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  void reset() {
    counters_.clear();
    histograms_.clear();
  }

  /// Render "name=value" lines, sorted by name (for logs and debugging).
  std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, Log2Histogram, std::less<>> histograms_;
};

}  // namespace mado
