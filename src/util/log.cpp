#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace mado {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("MADO_LOG");
  if (!env) return LogLevel::Warn;
  if (!std::strcmp(env, "trace")) return LogLevel::Trace;
  if (!std::strcmp(env, "debug")) return LogLevel::Debug;
  if (!std::strcmp(env, "info")) return LogLevel::Info;
  if (!std::strcmp(env, "warn")) return LogLevel::Warn;
  if (!std::strcmp(env, "error")) return LogLevel::Error;
  if (!std::strcmp(env, "off")) return LogLevel::Off;
  return LogLevel::Warn;
}

std::atomic<int> g_level{-1};
std::mutex g_io_mu;

const char* name_of(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl < 0) {
    lvl = static_cast<int>(level_from_env());
    g_level.store(lvl, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lvl);
}

void set_log_level(LogLevel lvl) {
  g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

void log_line(LogLevel lvl, const std::string& msg) {
  std::lock_guard<std::mutex> lk(g_io_mu);
  std::cerr << "[mado " << name_of(lvl) << "] " << msg << "\n";
}

}  // namespace mado
