// Time base abstraction.
//
// The engine and simulator express all time as nanoseconds in a uint64
// (`Nanos`). The simulator advances a VirtualClock deterministically; the
// socket driver path uses SteadyClock (wraps steady_clock). Engine code is
// written against the Clock interface so the two modes share one code path.
#pragma once

#include <chrono>
#include <cstdint>

namespace mado {

using Nanos = std::uint64_t;

constexpr Nanos kNanosPerMicro = 1000;
constexpr Nanos kNanosPerMilli = 1000 * 1000;
constexpr Nanos kNanosPerSec = 1000ull * 1000 * 1000;

constexpr Nanos usec(double us) {
  return static_cast<Nanos>(us * static_cast<double>(kNanosPerMicro));
}
constexpr double to_usec(Nanos ns) {
  return static_cast<double>(ns) / static_cast<double>(kNanosPerMicro);
}
constexpr double to_sec(Nanos ns) {
  return static_cast<double>(ns) / static_cast<double>(kNanosPerSec);
}

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Nanos now() const = 0;
};

/// Deterministic clock advanced by the simulation event loop.
class VirtualClock final : public Clock {
 public:
  Nanos now() const override { return now_; }
  void advance_to(Nanos t) {
    if (t > now_) now_ = t;
  }
  void advance_by(Nanos dt) { now_ += dt; }

 private:
  Nanos now_ = 0;
};

/// Wall-clock time base for real (socket) drivers.
class SteadyClock final : public Clock {
 public:
  Nanos now() const override {
    return static_cast<Nanos>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

}  // namespace mado
