// Lightweight assertion/check macros used across the library.
//
// MADO_ASSERT: debug-only invariant check (compiled out in NDEBUG builds).
// MADO_CHECK:  always-on check for conditions that indicate API misuse or
//              corrupted wire data; throws mado::CheckError so tests can
//              assert on failure instead of aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace mado {

/// Thrown by MADO_CHECK on failure. Deriving from logic_error keeps the
/// distinction clear: these are programming/protocol errors, not IO errors.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "MADO_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace mado

#define MADO_CHECK(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::mado::detail::check_failed(#expr, __FILE__, __LINE__, "");        \
  } while (0)

#define MADO_CHECK_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream mado_os_;                                        \
      mado_os_ << msg;                                                    \
      ::mado::detail::check_failed(#expr, __FILE__, __LINE__,             \
                                   mado_os_.str());                       \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define MADO_ASSERT(expr) ((void)0)
#else
#define MADO_ASSERT(expr) MADO_CHECK(expr)
#endif
