// Queues used at the driver/engine boundary.
//
// SpscRing<T>:  lock-free single-producer single-consumer ring with a fixed
//               power-of-two capacity; used between a driver IO thread and
//               the engine's progress loop.
// MpmcRing<T>:  lock-free bounded multi-producer multi-consumer ring
//               (Vyukov's sequence-stamped design); used as the per-peer
//               submit ring so application threads can enqueue messages
//               without ever contending with the progressor's peer lock.
// MpscQueue<T>: mutex-protected multi-producer single-consumer queue with
//               optional blocking pop; used for completion delivery where
//               multiple IO threads feed one progress loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace mado {

template <typename T>
class SpscRing {
 public:
  /// capacity must be a power of two; the ring holds capacity-1 elements.
  explicit SpscRing(std::size_t capacity) : buf_(capacity), mask_(capacity - 1) {
    MADO_CHECK_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                   "capacity must be a power of two");
  }

  /// Producer side. Returns false if full.
  bool try_push(T v) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    buf_[head] = std::move(v);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt if empty.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T v = std::move(buf_[tail]);
    // Reset the slot: a moved-from T may still own resources (e.g. a Bytes
    // payload whose buffer the move left behind, or a shared_ptr a given
    // type's move merely copied). Without this, a quiet ring pins the last
    // popped element's resources until the slot is overwritten — a
    // lifetime leak the consumer cannot see.
    buf_[tail] = T();
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return v;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t size() const {
    const std::size_t h = head_.load(std::memory_order_acquire);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    return (h - t) & mask_;
  }

 private:
  std::vector<T> buf_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

/// Bounded lock-free MPMC ring after Dmitry Vyukov's design: every slot
/// carries a sequence stamp so producers and consumers claim slots with one
/// CAS on their own cursor and never touch the other side's cacheline on the
/// fast path. try_push fails (rather than blocks) when the ring is full, so
/// callers always have a graceful locked fallback.
///
/// In mado this is the engine's per-peer *submit ring*: any number of
/// application threads push SubmitOps, and whichever thread happens to hold
/// that peer's lock (the progressor, or a submitter flat-combining) drains
/// it. Drain order is the ring order, so per-channel FIFO submit semantics
/// are preserved as long as each channel is used from one thread — the same
/// contract the locked path has.
template <typename T>
class MpmcRing {
 public:
  /// capacity must be a power of two; the ring holds `capacity` elements.
  explicit MpmcRing(std::size_t capacity)
      : slots_(capacity), mask_(capacity - 1) {
    MADO_CHECK_MSG(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                   "capacity must be a power of two");
    for (std::size_t i = 0; i < capacity; ++i)
      slots_[i].seq.store(i, std::memory_order_relaxed);
  }

  /// Any thread. Returns false if the ring is full (caller falls back to the
  /// locked path; never spins). Takes an rvalue and moves from it only on
  /// success, so a failed push leaves the caller's object intact for the
  /// fallback path.
  bool try_push(T&& v) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::size_t seq = s.seq.load(std::memory_order_acquire);
      const std::ptrdiff_t dif = static_cast<std::ptrdiff_t>(seq) -
                                 static_cast<std::ptrdiff_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    Slot& s = slots_[pos & mask_];
    s.value = std::move(v);
    s.seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Any thread. Returns nullopt if empty.
  std::optional<T> try_pop() {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& s = slots_[pos & mask_];
      const std::size_t seq = s.seq.load(std::memory_order_acquire);
      const std::ptrdiff_t dif = static_cast<std::ptrdiff_t>(seq) -
                                 static_cast<std::ptrdiff_t>(pos + 1);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return std::nullopt;  // empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    Slot& s = slots_[pos & mask_];
    T v = std::move(s.value);
    s.value = T();  // see SpscRing::try_pop for why moved-from slots reset
    s.seq.store(pos + mask_ + 1, std::memory_order_release);
    return v;
  }

  bool empty() const {
    // Conservative: between the two loads a racing producer may push, but a
    // `true` result is exact at the moment of the tail load, which is all
    // the drain loops need.
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    std::atomic<std::size_t> seq{0};
    T value{};
  };
  std::vector<Slot> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};  // producer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // consumer cursor
};

template <typename T>
class MpscQueue {
 public:
  void push(T v) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      q_.push_back(std::move(v));
    }
    cv_.notify_one();
  }

  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lk(mu_);
    if (q_.empty()) return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    return v;
  }

  /// Pop, waiting up to `timeout`. Returns nullopt on timeout.
  std::optional<T> pop_wait(std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lk(mu_);
    if (!cv_.wait_for(lk, timeout, [&] { return !q_.empty(); }))
      return std::nullopt;
    T v = std::move(q_.front());
    q_.pop_front();
    return v;
  }

  /// Pop, sleeping indefinitely until an item arrives. Consumers that use
  /// this MUST have a wake protocol (a sentinel item pushed at shutdown) —
  /// there is no timeout to fall out of. This is what lets an idle IO
  /// thread cost zero wakeups instead of polling a timed wait.
  T pop_blocking() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return !q_.empty(); });
    T v = std::move(q_.front());
    q_.pop_front();
    return v;
  }

  /// Drain everything currently queued into `out`; returns count.
  std::size_t drain(std::vector<T>& out) {
    std::lock_guard<std::mutex> lk(mu_);
    const std::size_t n = q_.size();
    for (auto& v : q_) out.push_back(std::move(v));
    q_.clear();
    return n;
  }

  bool empty() const {
    std::lock_guard<std::mutex> lk(mu_);
    return q_.empty();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return q_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> q_;
};

}  // namespace mado
