// Deterministic RNG (xoshiro256**) for reproducible workload generation.
//
// We deliberately do not use std::mt19937 + std::uniform_int_distribution in
// benchmarks: distribution implementations differ across standard libraries,
// which would make "reproducible" workloads compiler-dependent. All
// derivation here is fully specified.
#pragma once

#include <cstdint>

namespace mado {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // splitmix64 seeding, per Vigna's recommendation.
    std::uint64_t z = seed;
    for (auto& word : s_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      word = x ^ (x >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) via Lemire's multiply-shift (bound > 0).
  std::uint64_t below(std::uint64_t bound) {
    // 128-bit multiply keeps the modulo bias negligible for our purposes
    // (workload generation), and is fully deterministic.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace mado
