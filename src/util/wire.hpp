// Explicit little-endian wire codec.
//
// All on-the-wire integers in mado are little-endian with fixed widths,
// independent of host endianness, so packets produced by one driver can be
// decoded by any other (the socket driver really serializes bytes).
//
// WireWriter appends to a caller-owned byte vector; WireReader consumes a
// read-only byte span and throws CheckError on underrun, which the receiver
// surfaces as a malformed-packet error.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace mado {

using Byte = std::uint8_t;
using Bytes = std::vector<Byte>;
using ByteSpan = std::span<const Byte>;

class WireWriter {
 public:
  explicit WireWriter(Bytes& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<Byte>(v & 0xff));
    out_.push_back(static_cast<Byte>((v >> 8) & 0xff));
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      out_.push_back(static_cast<Byte>((v >> (8 * i)) & 0xff));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      out_.push_back(static_cast<Byte>((v >> (8 * i)) & 0xff));
  }
  void bytes(ByteSpan data) { out_.insert(out_.end(), data.begin(), data.end()); }
  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const Byte*>(data);
    out_.insert(out_.end(), p, p + len);
  }

  /// Current size of the underlying buffer (useful for back-patching).
  std::size_t size() const { return out_.size(); }

  /// Overwrite a previously written u32 at byte offset `at`.
  void patch_u32(std::size_t at, std::uint32_t v) {
    MADO_CHECK(at + 4 <= out_.size());
    for (int i = 0; i < 4; ++i)
      out_[at + static_cast<std::size_t>(i)] =
          static_cast<Byte>((v >> (8 * i)) & 0xff);
  }

 private:
  Bytes& out_;
};

class WireReader {
 public:
  explicit WireReader(ByteSpan in) : in_(in) {}

  std::uint8_t u8() {
    need(1);
    return in_[pos_++];
  }
  std::uint16_t u16() {
    need(2);
    auto v = static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(in_[pos_]) |
        (static_cast<std::uint16_t>(in_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(in_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(in_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
    pos_ += 8;
    return v;
  }
  ByteSpan bytes(std::size_t len) {
    need(len);
    ByteSpan s = in_.subspan(pos_, len);
    pos_ += len;
    return s;
  }
  void copy_to(void* dst, std::size_t len) {
    need(len);
    std::memcpy(dst, in_.data() + pos_, len);
    pos_ += len;
  }
  void skip(std::size_t len) {
    need(len);
    pos_ += len;
  }

  std::size_t remaining() const { return in_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool at_end() const { return pos_ == in_.size(); }

 private:
  void need(std::size_t n) const {
    MADO_CHECK_MSG(pos_ + n <= in_.size(),
                   "wire underrun: need " << n << " bytes, have "
                                          << (in_.size() - pos_));
  }
  ByteSpan in_;
  std::size_t pos_ = 0;
};

inline ByteSpan as_bytes(const void* p, std::size_t len) {
  return {static_cast<const Byte*>(p), len};
}

}  // namespace mado
