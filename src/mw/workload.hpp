// Synthetic workload generators: deterministic traffic schedules used by
// benchmarks and stress tests. A schedule is a list of (virtual time,
// flow, size) submissions that a driver function replays into a SimWorld —
// separating "what the application does" from "how the engine handles it".
//
// Generators model the paper's motivating application mix knobs:
//   uniform   — fixed-rate, fixed-size messages per flow
//   bursty    — alternating bursts and silences (burstiness is the lever
//               that moves a workload between the aggregation regime and
//               the Nagle regime)
//   poisson   — exponential inter-arrival times (deterministic via Rng)
//   mixed     — per-flow size classes like a middleware conglomerate
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace mado::mw {

struct Submission {
  Nanos at = 0;
  core::ChannelId flow = 0;
  std::size_t size = 0;
};

/// A full schedule, sorted by time.
using Schedule = std::vector<Submission>;

struct UniformSpec {
  std::size_t flows = 4;
  int msgs_per_flow = 50;
  std::size_t size = 64;
  Nanos interval = usec(1);  ///< spacing between a flow's submissions
  Nanos stagger = usec(0.2); ///< offset between flows
};
Schedule make_uniform(const UniformSpec& spec);

struct BurstySpec {
  std::size_t flows = 4;
  int bursts = 10;
  int burst_len = 8;          ///< messages per flow per burst
  std::size_t size = 64;
  Nanos intra_gap = 0;        ///< spacing inside a burst
  Nanos inter_gap = usec(20); ///< silence between bursts
};
Schedule make_bursty(const BurstySpec& spec);

struct PoissonSpec {
  std::size_t flows = 4;
  int msgs_per_flow = 50;
  std::size_t size = 64;
  double mean_gap_us = 2.0;
  std::uint64_t seed = 1;
};
Schedule make_poisson(const PoissonSpec& spec);

struct MixedSpec {
  int msgs_per_flow = 30;
  Nanos interval = usec(1);
  /// One entry per flow: that flow's fixed message size (a middleware
  /// conglomerate: control flows tiny, data flows chunky).
  std::vector<std::size_t> flow_sizes = {32, 32, 1024, 4096};
};
Schedule make_mixed(const MixedSpec& spec);

/// Total submissions per flow in `s` (for receivers to know what to drain).
std::vector<int> per_flow_counts(const Schedule& s);
std::size_t flow_count(const Schedule& s);

}  // namespace mado::mw
