#include "mw/collectives.hpp"

#include <cstring>
#include <optional>

#include "util/assert.hpp"

namespace mado::mw {

namespace {
using Kind = CollStep::Kind;
using Buf = CollStep::Buf;
}  // namespace

/// Executes one rank's slice of a CollSchedule with the non-blocking step
/// contract. Steps run strictly in order; receives are two-phase so step()
/// never blocks: probe() gates attaching, the buffer is registered with
/// RecvMode::Cheaper (which answers a rendezvous RTS with its CTS
/// immediately, letting every rank's bulk fly concurrently), and
/// completion is polled via IncomingMessage::ready(). RecvReduce lands in
/// a staging buffer and folds into the destination (sum of doubles).
/// Sends snapshot their payload at post time (SendMode::Safe), which is
/// what lets Bruck reuse its staging area for the reply.
class ScheduleOp final : public Collectives::Op {
 public:
  ScheduleOp(Collectives& coll, std::shared_ptr<const CollSchedule> s,
             const void* in, void* out)
      : coll_(coll),
        sched_(std::move(s)),
        in_(static_cast<const Byte*>(in)),
        out_(static_cast<Byte*>(out)),
        steps_(&sched_->ranks[coll.rank()].steps) {
    scratch_.assign(static_cast<std::size_t>(sched_->scratch_bytes),
                    Byte{0});
    std::size_t staging = 0;
    for (const CollStep& st : *steps_)
      if (st.kind == Kind::RecvReduce)
        staging = std::max(staging, static_cast<std::size_t>(st.len));
    // double-aligned staging for the reduction arithmetic
    staging_.resize((staging + sizeof(double) - 1) / sizeof(double));
  }

  bool step() override {
    bool progressed = false;
    while (pc_ < steps_->size()) {
      const CollStep& st = (*steps_)[pc_];
      switch (st.kind) {
        case Kind::Send: {
          core::Message m;
          m.pack(read_ptr(st.buf) + st.offset,
                 static_cast<std::size_t>(st.len), core::SendMode::Safe);
          coll_.channel_to(st.peer).post(std::move(m));
          coll_.engine().stats().inc("coll.sends");
          coll_.engine().stats().inc("coll.bytes", st.len);
          break;
        }
        case Kind::Recv:
        case Kind::RecvReduce: {
          if (!pending_) {
            core::Channel& ch = coll_.channel_to(st.peer);
            if (!ch.probe()) return progressed;
            pending_.emplace(ch.begin_recv());
            void* dst = st.kind == Kind::Recv
                            ? static_cast<void*>(write_ptr(st.buf) +
                                                 st.offset)
                            : static_cast<void*>(staging_.data());
            pending_->unpack(dst, static_cast<std::size_t>(st.len),
                             core::RecvMode::Cheaper);
            progressed = true;  // registered the buffer / answered the RTS
          }
          if (!pending_->ready()) return progressed;
          pending_->finish();  // already complete: does not wait
          pending_.reset();
          if (st.kind == Kind::RecvReduce) {
            auto* dst =
                reinterpret_cast<double*>(write_ptr(st.buf) + st.offset);
            const std::size_t cnt =
                static_cast<std::size_t>(st.len) / sizeof(double);
            for (std::size_t i = 0; i < cnt; ++i) dst[i] += staging_[i];
          }
          break;
        }
        case Kind::Copy:
          std::memcpy(write_ptr(st.buf) + st.offset,
                      read_ptr(st.src_buf) + st.src_offset,
                      static_cast<std::size_t>(st.len));
          break;
      }
      ++pc_;
      progressed = true;
    }
    return progressed;
  }

  bool done() const override { return pc_ >= steps_->size(); }

 private:
  const Byte* read_ptr(Buf b) const {
    switch (b) {
      case Buf::In: return in_ != nullptr ? in_ : out_;  // bcast: data in Out
      case Buf::Out: return out_;
      case Buf::Scratch: return scratch_.data();
    }
    return nullptr;
  }
  Byte* write_ptr(Buf b) {
    MADO_CHECK_MSG(b != Buf::In, "schedule writes into read-only input");
    return b == Buf::Out ? out_ : scratch_.data();
  }

  Collectives& coll_;
  std::shared_ptr<const CollSchedule> sched_;
  const Byte* in_;
  Byte* out_;
  const std::vector<CollStep>* steps_;
  Bytes scratch_;
  std::vector<double> staging_;
  std::size_t pc_ = 0;
  /// The in-flight receive of the current step, if any (at most one:
  /// steps execute strictly in local order).
  std::optional<core::IncomingMessage> pending_;
};

Collectives::Collectives(core::Engine& engine, Rank rank, Rank size,
                         core::ChannelId channel,
                         std::function<core::NodeId(Rank)> rank_to_node)
    : engine_(engine), rank_(rank), size_(size), channel_id_(channel),
      rank_to_node_(std::move(rank_to_node)) {
  MADO_CHECK(size > 0 && rank < size);
  if (!rank_to_node_)
    rank_to_node_ = [](Rank r) { return static_cast<core::NodeId>(r); };
}

core::Channel& Collectives::channel_to(Rank peer) {
  MADO_CHECK(peer < size_ && peer != rank_);
  auto it = channels_.find(peer);
  if (it == channels_.end()) {
    it = channels_
             .emplace(peer, engine_.open_channel(rank_to_node_(peer),
                                                 channel_id_))
             .first;
  }
  return it->second;
}

void Collectives::ensure_planner() {
  if (planner_) return;
  CollTopology topo;
  if (size_ == 1) {
    topo = CollTopology::uniform(1, drv::Capabilities{});
  } else {
    // Engine-local view: this rank's rails toward its first partner stand
    // in for every pair (uniform worlds — the common case). Heterogeneous
    // or failure-aware jobs install an explicit topology on every rank.
    const Rank peer = rank_ == 0 ? 1 : 0;
    const core::NodeId node = rank_to_node_(peer);
    const std::size_t rails = engine_.rail_count(node);
    MADO_CHECK_MSG(rails > 0, "no rails toward rank " << peer);
    CollNode self;
    for (std::size_t r = 0; r < rails; ++r) {
      const auto rid = static_cast<RailId>(r);
      self.rails.push_back(
          CollRail{engine_.rail_caps(node, rid),
                   engine_.rail_state(node, rid) != core::RailState::Down});
    }
    topo.nodes.assign(size_, self);
  }
  planner_ = std::make_unique<CollectivePlanner>(std::move(topo));
}

const CollectivePlanner& Collectives::planner() {
  ensure_planner();
  return *planner_;
}

void Collectives::set_algorithm(CollAlgo algo) {
  algo_ = algo;
  plan_cache_.clear();
}

void Collectives::set_topology(CollTopology topo) {
  MADO_CHECK(topo.size() == size_);
  planner_ = std::make_unique<CollectivePlanner>(std::move(topo));
  plan_cache_.clear();
}

std::shared_ptr<const CollSchedule> Collectives::plan_cached(
    CollKind kind, std::uint64_t bytes, Rank root, std::size_t elem) {
  ensure_planner();
  const auto key = std::make_tuple(static_cast<int>(kind),
                                   static_cast<int>(algo_), bytes, root);
  auto it = plan_cache_.find(key);
  if (it == plan_cache_.end()) {
    it = plan_cache_
             .emplace(key, planner_->plan(kind, bytes, root, algo_, elem))
             .first;
  }
  return it->second;
}

std::unique_ptr<Collectives::Op> Collectives::run_schedule(
    std::shared_ptr<const CollSchedule> s, const void* in, void* out) {
  MADO_CHECK(s != nullptr && s->size == size_ && rank_ < s->ranks.size());
  auto& stats = engine_.stats();
  stats.inc("coll.ops");
  stats.inc("coll.steps", s->ranks[rank_].steps.size());
  if (s->chunk > 0 && s->bytes > 0)
    stats.inc("coll.chunks", (s->bytes + s->chunk - 1) / s->chunk);
  switch (s->algo) {
    case CollAlgo::Linear: stats.inc("coll.algo_linear"); break;
    case CollAlgo::Tree: stats.inc("coll.algo_tree"); break;
    case CollAlgo::Ring: stats.inc("coll.algo_ring"); break;
    case CollAlgo::Bucket: stats.inc("coll.algo_bucket"); break;
    case CollAlgo::Auto: break;  // schedules always record a concrete algo
  }
  last_ = s;
  return std::make_unique<ScheduleOp>(*this, std::move(s), in, out);
}

std::unique_ptr<Collectives::Op> Collectives::barrier() {
  return run_schedule(plan_cached(CollKind::Barrier, 0, 0, 1), nullptr,
                      nullptr);
}

std::unique_ptr<Collectives::Op> Collectives::bcast(void* buf,
                                                    std::size_t len,
                                                    Rank root) {
  MADO_CHECK(root < size_ && (buf != nullptr || len == 0));
  return run_schedule(plan_cached(CollKind::Bcast, len, root, 1), nullptr,
                      buf);
}

std::unique_ptr<Collectives::Op> Collectives::reduce_sum(const double* in,
                                                         double* out,
                                                         std::size_t n,
                                                         Rank root) {
  MADO_CHECK(root < size_ && (n == 0 || in != nullptr));
  MADO_CHECK(n == 0 || rank_ != root || out != nullptr);
  auto s = plan_cached(CollKind::Reduce, n * sizeof(double), root,
                       sizeof(double));
  // Non-root ranks may pass out == nullptr only if their slice never
  // touches Out (pure leaves that forward In directly).
  if (out == nullptr) {
    for (const CollStep& st : s->ranks[rank_].steps)
      MADO_CHECK_MSG(st.buf != CollStep::Buf::Out,
                     "reduce_sum: this rank folds partials; out buffer "
                     "required");
  }
  return run_schedule(std::move(s), in, out);
}

std::unique_ptr<Collectives::Op> Collectives::allreduce_sum(const double* in,
                                                            double* out,
                                                            std::size_t n) {
  MADO_CHECK(n == 0 || (in != nullptr && out != nullptr));
  return run_schedule(
      plan_cached(CollKind::Allreduce, n * sizeof(double), 0,
                  sizeof(double)),
      in, out);
}

std::unique_ptr<Collectives::Op> Collectives::alltoall(const void* send,
                                                       void* recv,
                                                       std::size_t block) {
  MADO_CHECK(block == 0 || (send != nullptr && recv != nullptr));
  if (block == 0)
    return run_schedule(plan_cached(CollKind::Barrier, 0, 0, 1), nullptr,
                        nullptr);
  return run_schedule(plan_cached(CollKind::Alltoall, block, 0, 1), send,
                      recv);
}

bool drive_all(const std::function<bool()>& progress,
               const std::vector<Collectives::Op*>& ops) {
  for (;;) {
    bool all_done = true;
    bool progressed = false;
    for (Collectives::Op* op : ops) {
      if (op->done()) continue;
      all_done = false;
      if (op->step()) progressed = true;
    }
    if (all_done) return true;
    if (!progressed && !progress()) return false;
  }
}

}  // namespace mado::mw
