#include "mw/collectives.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace mado::mw {

namespace {

/// One scheduled action of a rank's collective script. Scripts execute
/// strictly in order, so a DeferredSend that reads a buffer is guaranteed
/// to run after the Recv/Compute that filled it.
struct Action {
  enum class Kind { Recv, Compute } kind = Kind::Compute;
  // Recv:
  Collectives::Rank peer = 0;
  Byte* recv_buf = nullptr;
  std::size_t recv_len = 0;
  std::shared_ptr<Bytes> recv_scratch;  // owns recv_buf when set
  // Compute (also used for deferred sends, which post inside the lambda):
  std::function<void()> compute;
};

Action make_recv(Collectives::Rank peer, void* buf, std::size_t len) {
  Action a;
  a.kind = Action::Kind::Recv;
  a.peer = peer;
  a.recv_buf = static_cast<Byte*>(buf);
  a.recv_len = len;
  return a;
}

Action make_recv_scratch(Collectives::Rank peer,
                         std::shared_ptr<Bytes> scratch) {
  Action a;
  a.kind = Action::Kind::Recv;
  a.peer = peer;
  a.recv_buf = scratch->data();
  a.recv_len = scratch->size();
  a.recv_scratch = std::move(scratch);
  return a;
}

Action make_compute(std::function<void()> fn) {
  Action a;
  a.kind = Action::Kind::Compute;
  a.compute = std::move(fn);
  return a;
}

}  // namespace

/// Sequential script executor with the non-blocking step contract.
class CollectiveOp final : public Collectives::Op {
 public:
  CollectiveOp(Collectives& coll, std::vector<Action> script)
      : coll_(coll), script_(std::move(script)) {}

  bool step() override {
    bool progressed = false;
    while (pc_ < script_.size()) {
      Action& a = script_[pc_];
      if (a.kind == Action::Kind::Recv) {
        core::Channel& ch = coll_.channel_to(a.peer);
        if (!ch.probe()) return progressed;  // peer hasn't posted yet
        core::IncomingMessage im = ch.begin_recv();
        im.unpack(a.recv_buf, a.recv_len, core::RecvMode::Express);
        im.finish();
      } else {
        a.compute();
      }
      ++pc_;
      progressed = true;
    }
    return progressed;
  }

  bool done() const override { return pc_ >= script_.size(); }

 private:
  Collectives& coll_;
  std::vector<Action> script_;
  std::size_t pc_ = 0;
};

Collectives::Collectives(core::Engine& engine, Rank rank, Rank size,
                         core::ChannelId channel,
                         std::function<core::NodeId(Rank)> rank_to_node)
    : engine_(engine), rank_(rank), size_(size), channel_id_(channel),
      rank_to_node_(std::move(rank_to_node)) {
  MADO_CHECK(size > 0 && rank < size);
  if (!rank_to_node_)
    rank_to_node_ = [](Rank r) { return static_cast<core::NodeId>(r); };
}

core::Channel& Collectives::channel_to(Rank peer) {
  MADO_CHECK(peer < size_ && peer != rank_);
  auto it = channels_.find(peer);
  if (it == channels_.end()) {
    it = channels_
             .emplace(peer, engine_.open_channel(rank_to_node_(peer),
                                                 channel_id_))
             .first;
  }
  return it->second;
}

/// Deferred send: snapshots `len` bytes from `src` at execution time and
/// posts them to `peer`. Sequential scripts make this safe.
static Action make_deferred_send(Collectives& coll, Collectives::Rank peer,
                                 const void* src, std::size_t len) {
  return make_compute([&coll, peer, src, len] {
    core::Message m;
    m.pack(src, len, core::SendMode::Safe);
    coll.channel_to(peer).post(std::move(m));
  });
}

std::unique_ptr<Collectives::Op> Collectives::barrier() {
  // Dissemination: in round k (dist = 2^k), notify (rank + dist) mod size
  // and await (rank - dist) mod size. After ceil(log2 size) rounds, every
  // rank has transitively heard from all others.
  std::vector<Action> script;
  for (Rank dist = 1; dist < size_; dist *= 2) {
    const Rank to = (rank_ + dist) % size_;
    script.push_back(make_compute([this, to] {
      const Byte token{0x42};
      core::Message m;
      m.pack(&token, 1, core::SendMode::Safe);
      channel_to(to).post(std::move(m));
    }));
    script.push_back(make_recv_scratch((rank_ + size_ - dist) % size_,
                                       std::make_shared<Bytes>(1)));
  }
  return std::make_unique<CollectiveOp>(*this, std::move(script));
}

std::unique_ptr<Collectives::Op> Collectives::bcast(void* buf,
                                                    std::size_t len,
                                                    Rank root) {
  MADO_CHECK(root < size_ && (buf != nullptr || len == 0));
  // Binomial tree on root-relative vranks: vrank v != 0 receives from
  // v - lowbit(v); v then forwards to v + 2^k for each 2^k below lowbit(v)
  // (or below size for the root), largest subtree first.
  const Rank vrank = (rank_ + size_ - root) % size_;
  auto to_real = [this, root](Rank v) { return (v + root) % size_; };

  std::vector<Action> script;
  if (vrank != 0) {
    const Rank lowbit = vrank & (~vrank + 1);
    script.push_back(make_recv(to_real(vrank - lowbit), buf, len));
  }
  const Rank limit = vrank == 0 ? size_ : (vrank & (~vrank + 1));
  std::vector<Rank> children;
  for (Rank d = 1; d < limit && vrank + d < size_; d *= 2)
    children.push_back(vrank + d);
  for (auto it = children.rbegin(); it != children.rend(); ++it)
    script.push_back(make_deferred_send(*this, to_real(*it), buf, len));
  return std::make_unique<CollectiveOp>(*this, std::move(script));
}

std::unique_ptr<Collectives::Op> Collectives::reduce_sum(const double* in,
                                                         double* out,
                                                         std::size_t n,
                                                         Rank root) {
  MADO_CHECK(root < size_ && (n == 0 || (in != nullptr && out != nullptr)));
  const Rank vrank = (rank_ + size_ - root) % size_;
  auto to_real = [this, root](Rank v) { return (v + root) % size_; };

  std::vector<Action> script;
  script.push_back(make_compute([in, out, n] {
    if (n > 0 && out != in) std::memcpy(out, in, n * sizeof(double));
  }));
  // Binomial gather: in round d, vranks with bit d set ship their partial
  // sum to vrank - d and finish; the others fold in vrank + d's partial.
  for (Rank d = 1; d < size_; d *= 2) {
    if (vrank & d) {
      script.push_back(make_deferred_send(*this, to_real(vrank - d), out,
                                          n * sizeof(double)));
      break;
    }
    if (vrank + d < size_) {
      auto scratch = std::make_shared<Bytes>(n * sizeof(double));
      script.push_back(make_recv_scratch(to_real(vrank + d), scratch));
      script.push_back(make_compute([scratch, out, n] {
        const auto* part = reinterpret_cast<const double*>(scratch->data());
        for (std::size_t i = 0; i < n; ++i) out[i] += part[i];
      }));
    }
  }
  return std::make_unique<CollectiveOp>(*this, std::move(script));
}

namespace {

/// Chains two ops sequentially.
class SeqOp final : public Collectives::Op {
 public:
  SeqOp(std::unique_ptr<Collectives::Op> a, std::unique_ptr<Collectives::Op> b)
      : a_(std::move(a)), b_(std::move(b)) {}
  bool step() override {
    bool progressed = false;
    if (!a_->done()) {
      progressed = a_->step();
      if (!a_->done()) return progressed;
    }
    return b_->step() || progressed;
  }
  bool done() const override { return a_->done() && b_->done(); }

 private:
  std::unique_ptr<Collectives::Op> a_, b_;
};

}  // namespace

std::unique_ptr<Collectives::Op> Collectives::allreduce_sum(const double* in,
                                                            double* out,
                                                            std::size_t n) {
  return std::make_unique<SeqOp>(
      reduce_sum(in, out, n, /*root=*/0),
      bcast(out, n * sizeof(double), /*root=*/0));
}

bool drive_all(const std::function<bool()>& progress,
               const std::vector<Collectives::Op*>& ops) {
  for (;;) {
    bool all_done = true;
    bool progressed = false;
    for (Collectives::Op* op : ops) {
      if (op->done()) continue;
      all_done = false;
      if (op->step()) progressed = true;
    }
    if (all_done) return true;
    if (!progressed && !progress()) return false;
  }
}

}  // namespace mado::mw
