#include "mw/dsm.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace mado::mw {

namespace {

enum class DsmOp : std::uint32_t { Get = 1, Put = 2, GetReply = 3, PutAck = 4 };

struct DsmHeader {
  DsmOp op;
  std::uint32_t page;
  std::uint32_t len;  // payload bytes following (page data or 0)
};

void post_with_payload(core::Channel& ch, const DsmHeader& hdr,
                       ByteSpan payload) {
  core::Message m;
  m.pack(&hdr, sizeof hdr, core::SendMode::Safe);
  m.pack(payload.data(), payload.size(), core::SendMode::Safe);
  ch.post(std::move(m));
}

DsmHeader recv_header_then(core::IncomingMessage& im, Bytes& payload) {
  DsmHeader hdr{};
  im.unpack(&hdr, sizeof hdr, core::RecvMode::Express);
  payload.resize(hdr.len);
  im.unpack(payload.data(), hdr.len, core::RecvMode::Cheaper);
  im.finish();
  return hdr;
}

}  // namespace

// ---- home -------------------------------------------------------------------

DsmHome::DsmHome(core::Engine& engine, core::NodeId client,
                 core::ChannelId channel, std::size_t page_size,
                 std::size_t page_count, core::TrafficClass cls)
    : engine_(engine), channel_(engine.open_channel(client, channel, cls)),
      page_size_(page_size), pages_(page_count, Bytes(page_size, Byte{0})) {
  MADO_CHECK(page_size > 0 && page_count > 0);
}

Bytes& DsmHome::page(std::size_t idx) {
  MADO_CHECK(idx < pages_.size());
  return pages_[idx];
}

void DsmHome::serve_one() {
  core::IncomingMessage im = channel_.begin_recv();
  Bytes payload;
  const DsmHeader hdr = recv_header_then(im, payload);
  MADO_CHECK_MSG(hdr.page < pages_.size(), "page " << hdr.page
                                                   << " out of range");
  switch (hdr.op) {
    case DsmOp::Get: {
      MADO_CHECK(hdr.len == 0);
      const Bytes& pg = pages_[hdr.page];
      DsmHeader reply{DsmOp::GetReply, hdr.page,
                      static_cast<std::uint32_t>(pg.size())};
      post_with_payload(channel_, reply, ByteSpan(pg));
      ++gets_;
      break;
    }
    case DsmOp::Put: {
      MADO_CHECK_MSG(hdr.len == page_size_, "partial page put");
      pages_[hdr.page] = std::move(payload);
      DsmHeader ack{DsmOp::PutAck, hdr.page, 0};
      post_with_payload(channel_, ack, {});
      ++puts_;
      break;
    }
    default:
      MADO_CHECK_MSG(false, "unexpected DSM op at home node");
  }
}

// ---- client ------------------------------------------------------------------

DsmClient::DsmClient(core::Engine& engine, core::NodeId home,
                     core::ChannelId channel, std::size_t page_size,
                     core::TrafficClass cls)
    : engine_(engine), channel_(engine.open_channel(home, channel, cls)),
      page_size_(page_size) {
  MADO_CHECK(page_size > 0);
}

void DsmClient::issue_get(std::uint32_t page) {
  DsmHeader req{DsmOp::Get, page, 0};
  post_with_payload(channel_, req, {});
}

Bytes DsmClient::complete_get(std::uint32_t page) {
  core::IncomingMessage im = channel_.begin_recv();
  Bytes payload;
  const DsmHeader hdr = recv_header_then(im, payload);
  MADO_CHECK(hdr.op == DsmOp::GetReply && hdr.page == page);
  MADO_CHECK(payload.size() == page_size_);
  return payload;
}

void DsmClient::issue_put(std::uint32_t page, ByteSpan data) {
  MADO_CHECK_MSG(data.size() == page_size_, "put must cover a whole page");
  DsmHeader req{DsmOp::Put, page, static_cast<std::uint32_t>(data.size())};
  post_with_payload(channel_, req, data);
}

void DsmClient::complete_put(std::uint32_t page) {
  core::IncomingMessage im = channel_.begin_recv();
  Bytes payload;
  const DsmHeader hdr = recv_header_then(im, payload);
  MADO_CHECK(hdr.op == DsmOp::PutAck && hdr.page == page);
}

Bytes DsmClient::get(std::uint32_t page) {
  issue_get(page);
  return complete_get(page);
}

void DsmClient::put(std::uint32_t page, ByteSpan data) {
  issue_put(page, data);
  complete_put(page);
}

}  // namespace mado::mw
