// Replays a workload Schedule into a two-node SimWorld and reports the
// outcome metrics benchmarks care about (completion time, transactions,
// per-message latency). Shared by bench_a4 and tests.
#pragma once

#include "core/world.hpp"
#include "mw/workload.hpp"

namespace mado::mw {

struct ReplayResult {
  Nanos completion = 0;        ///< virtual time when everything drained
  std::uint64_t packets = 0;   ///< sender network transactions
  std::uint64_t frags = 0;
  double mean_latency_us = 0;  ///< submit → receive-complete, averaged
  double frags_per_packet() const {
    return packets ? static_cast<double>(frags) / static_cast<double>(packets)
                   : 0;
  }
};

/// Drives `schedule` from node 0 to node 1 of a fresh SimWorld built with
/// `cfg` and one rail of `caps`. Single-fragment messages; receivers drain
/// per flow in order.
ReplayResult replay(const core::EngineConfig& cfg,
                    const drv::Capabilities& caps, const Schedule& schedule);

}  // namespace mado::mw
