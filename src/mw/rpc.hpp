// RPC middleware: request/response with header-first demultiplexing — the
// "programming models involving irregular communication schemes such as
// RPC" of paper §2.
//
// A request is a structured message:
//   fragment 0 (express): RpcRequestHeader { request id, function id, len }
//   fragment 1 (cheaper): argument bytes
// The server unpacks the header first (express) and only then knows how to
// dispatch — exactly the "message internal dependency" the optimizer must
// respect. Responses flow on the same (bidirectional) channel.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "core/api.hpp"
#include "core/engine.hpp"

namespace mado::mw {

using RpcFunctionId = std::uint32_t;

class RpcClient {
 public:
  RpcClient(core::Engine& engine, core::NodeId server,
            core::ChannelId channel,
            core::TrafficClass cls = core::TrafficClass::SmallEager);

  /// Blocking call: send request, wait for the matching response.
  Bytes call(RpcFunctionId fn, ByteSpan args);
  Bytes call(RpcFunctionId fn, const void* args, std::size_t len) {
    return call(fn, as_bytes(args, len));
  }

  /// Fire-and-collect pipelining: issue a request now...
  std::uint64_t issue(RpcFunctionId fn, ByteSpan args);
  /// ...and collect responses later, in issue order.
  Bytes collect(std::uint64_t request_id);

 private:
  core::Engine& engine_;
  core::Channel channel_;
  std::uint64_t next_req_ = 1;
  std::uint64_t next_collect_ = 1;
  std::map<std::uint64_t, Bytes> ready_;  // out-of-order collected responses
};

class RpcServer {
 public:
  using Handler = std::function<Bytes(ByteSpan args)>;

  RpcServer(core::Engine& engine, core::NodeId client,
            core::ChannelId channel,
            core::TrafficClass cls = core::TrafficClass::SmallEager);

  void register_handler(RpcFunctionId fn, Handler h);

  /// Serve exactly one request (blocking until it arrives).
  void serve_one();
  /// Serve n requests.
  void serve(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) serve_one();
  }
  /// True if a request is already waiting.
  bool pending() const { return channel_.probe(); }

  std::uint64_t served() const { return served_; }

 private:
  core::Engine& engine_;
  mutable core::Channel channel_;
  std::map<RpcFunctionId, Handler> handlers_;
  std::uint64_t served_ = 0;
};

}  // namespace mado::mw
