#include "mw/workload_runner.hpp"

#include "util/assert.hpp"

namespace mado::mw {

ReplayResult replay(const core::EngineConfig& cfg,
                    const drv::Capabilities& caps, const Schedule& schedule) {
  MADO_CHECK(!schedule.empty());
  core::SimWorld w(2, cfg);
  w.connect(0, 1, caps);

  const std::size_t flows = flow_count(schedule);
  std::vector<core::Channel> tx, rx;
  for (std::size_t f = 0; f < flows; ++f) {
    tx.push_back(w.node(0).open_channel(1, static_cast<core::ChannelId>(f)));
    rx.push_back(w.node(1).open_channel(0, static_cast<core::ChannelId>(f)));
  }

  // Schedule all submissions as fabric events. Payload buffers are owned by
  // a shared pool so the lambdas stay cheap; Safe mode copies at post time.
  std::vector<std::vector<Nanos>> submit_times(flows);
  for (const Submission& sub : schedule) {
    submit_times[sub.flow].push_back(sub.at);
    w.fabric().post_at(sub.at, [&w, &tx, sub] {
      Bytes data(sub.size, static_cast<Byte>(sub.flow + 1));
      core::Message m;
      m.pack(data.data(), data.size(), core::SendMode::Safe);
      tx[sub.flow].post(std::move(m));
    });
  }

  // Drain: per flow in order, interleaved round-robin over flows by global
  // submission order so latency accounting follows the schedule.
  double total_latency = 0;
  std::vector<std::size_t> next(flows, 0);
  for (const Submission& sub : schedule) {
    Bytes out(sub.size);
    core::IncomingMessage im = rx[sub.flow].begin_recv();
    im.unpack(out.data(), out.size(), core::RecvMode::Express);
    im.finish();
    total_latency +=
        to_usec(w.now() - submit_times[sub.flow][next[sub.flow]]);
    ++next[sub.flow];
  }
  w.node(0).flush();

  ReplayResult r;
  r.completion = w.now();
  r.packets = w.node(0).stats().counter("tx.packets");
  r.frags = w.node(0).stats().counter("tx.frags");
  r.mean_latency_us = total_latency / static_cast<double>(schedule.size());
  return r;
}

}  // namespace mado::mw
