#include "mw/mini_mpi.hpp"

#include <cstring>

#include "util/assert.hpp"
#include "util/wire.hpp"

namespace mado::mw {

namespace {
struct MpiHeader {
  std::int32_t tag;
  std::uint32_t len;
};
}  // namespace

MpiEndpoint::MpiEndpoint(core::Engine& engine, core::NodeId peer,
                         core::ChannelId channel, core::TrafficClass cls)
    : engine_(engine), channel_(engine.open_channel(peer, channel, cls)) {}

core::SendHandle MpiEndpoint::isend(Tag tag, const void* buf,
                                    std::size_t len) {
  MpiHeader hdr{tag, static_cast<std::uint32_t>(len)};
  core::Message m;
  m.pack(&hdr, sizeof hdr, core::SendMode::Safe);
  m.pack(buf, len, core::SendMode::Cheaper);
  return channel_.post(std::move(m));
}

void MpiEndpoint::send(Tag tag, const void* buf, std::size_t len) {
  core::SendHandle h = isend(tag, buf, len);
  MADO_CHECK_MSG(engine_.wait_send(h), "mini-mpi send timed out");
}

MpiEndpoint::Pending MpiEndpoint::pull_one() {
  core::IncomingMessage im = channel_.begin_recv();
  MpiHeader hdr{};
  im.unpack(&hdr, sizeof hdr, core::RecvMode::Express);
  Pending p;
  p.tag = hdr.tag;
  p.payload.resize(hdr.len);
  im.unpack(p.payload.data(), hdr.len, core::RecvMode::Cheaper);
  im.finish();
  return p;
}

void MpiEndpoint::recv(Tag tag, void* buf, std::size_t len) {
  // Check the unexpected queue first.
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (it->tag == tag) {
      MADO_CHECK_MSG(it->payload.size() == len,
                     "recv size " << len << " != message size "
                                  << it->payload.size());
      if (len > 0) std::memcpy(buf, it->payload.data(), len);
      unexpected_.erase(it);
      return;
    }
  }
  for (;;) {
    Pending p = pull_one();
    if (p.tag == tag) {
      MADO_CHECK_MSG(p.payload.size() == len,
                     "recv size " << len << " != message size "
                                  << p.payload.size());
      if (len > 0) std::memcpy(buf, p.payload.data(), len);
      return;
    }
    unexpected_.push_back(std::move(p));
  }
}

MpiEndpoint::AnyMessage MpiEndpoint::recv_any() {
  AnyMessage out;
  if (!unexpected_.empty()) {
    out.tag = unexpected_.front().tag;
    out.payload = std::move(unexpected_.front().payload);
    unexpected_.pop_front();
    return out;
  }
  Pending p = pull_one();
  out.tag = p.tag;
  out.payload = std::move(p.payload);
  return out;
}

bool MpiEndpoint::has_buffered(Tag tag) const {
  for (const Pending& p : unexpected_)
    if (p.tag == tag) return true;
  return false;
}

// ---- MpiCommunicator -------------------------------------------------------

MpiCommunicator::MpiCommunicator(core::Engine& engine, Rank rank, Rank size,
                                 core::ChannelId channel,
                                 std::function<core::NodeId(Rank)> rank_to_node)
    : coll_(engine, rank, size, channel, std::move(rank_to_node)) {}

void MpiCommunicator::set_progress(std::function<bool()> progress) {
  progress_ = std::move(progress);
}

void MpiCommunicator::run(std::unique_ptr<Collectives::Op> op) {
  while (!op->done()) {
    if (op->step()) continue;
    // Blocked: in a cooperative world pump the installed progress source;
    // in threaded worlds peers progress on their own threads, so just
    // yield back into step()'s probe loop.
    if (progress_) {
      MADO_CHECK_MSG(progress_() || op->done() || op->step(),
                     "mpi collective blocked with a drained world");
    }
  }
}

void MpiCommunicator::barrier() { run(coll_.barrier()); }

void MpiCommunicator::bcast(void* buf, std::size_t len, Rank root) {
  run(coll_.bcast(buf, len, root));
}

void MpiCommunicator::reduce_sum(const double* in, double* out,
                                 std::size_t n, Rank root) {
  run(coll_.reduce_sum(in, out, n, root));
}

void MpiCommunicator::allreduce_sum(const double* in, double* out,
                                    std::size_t n) {
  run(coll_.allreduce_sum(in, out, n));
}

void MpiCommunicator::alltoall(const void* send, void* recv,
                               std::size_t block) {
  run(coll_.alltoall(send, recv, block));
}

}  // namespace mado::mw
