// Collective operations over the engine: barrier (dissemination), broadcast
// (binomial tree), reduce and allreduce (sum of doubles) — the regular
// SPMD communication patterns an MPI-like middleware layers on top of
// Madeleine (paper §2).
//
// Every operation is a NON-BLOCKING state machine: step() makes progress
// when it can (posting sends immediately; consuming a receive only once
// probe() shows the peer's message has arrived) and returns whether any
// progress was made. This lets all ranks be driven cooperatively from one
// thread in the simulated world — see drive_all() — while threaded
// (socket-world) applications can simply loop step() per rank thread.
//
// Connectivity: the underlying engines need a rail between every pair of
// ranks that exchange messages (fully connecting the SimWorld is the easy
// default). Each ordered pair lazily opens one dedicated channel; rounds
// are disambiguated purely by channel FIFO order, so no tags are needed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/api.hpp"
#include "core/engine.hpp"

namespace mado::mw {

class Collectives {
 public:
  using Rank = std::uint32_t;

  /// `rank_to_node` maps collective ranks to engine NodeIds; identity is
  /// the common case (rank i == node i).
  Collectives(core::Engine& engine, Rank rank, Rank size,
              core::ChannelId channel = 0x7c00,
              std::function<core::NodeId(Rank)> rank_to_node = {});

  class Op {
   public:
    virtual ~Op() = default;
    /// Advance as far as possible without blocking. Returns true if any
    /// progress was made (actions executed).
    virtual bool step() = 0;
    virtual bool done() const = 0;
  };

  /// Dissemination barrier: ceil(log2(size)) rounds.
  std::unique_ptr<Op> barrier();

  /// Binomial-tree broadcast of `len` bytes from `root`. Non-root buffers
  /// are overwritten; all buffers must stay valid until done().
  std::unique_ptr<Op> bcast(void* buf, std::size_t len, Rank root);

  /// Binomial-tree sum-reduction of `n` doubles into `out` at `root`
  /// (out may alias in; on non-roots out is scratch).
  std::unique_ptr<Op> reduce_sum(const double* in, double* out,
                                 std::size_t n, Rank root);

  /// reduce_sum to rank 0 followed by bcast.
  std::unique_ptr<Op> allreduce_sum(const double* in, double* out,
                                    std::size_t n);

  Rank rank() const { return rank_; }
  Rank size() const { return size_; }

  /// The lazily opened point-to-point channel toward `peer` (exposed for
  /// custom collective algorithms built on the same pairwise channels).
  core::Channel& channel_to(Rank peer);

 private:
  core::Engine& engine_;
  Rank rank_;
  Rank size_;
  core::ChannelId channel_id_;
  std::function<core::NodeId(Rank)> rank_to_node_;
  std::map<Rank, core::Channel> channels_;
};

/// Drive several ranks' operations to completion cooperatively: alternates
/// op steps with `progress` (e.g. [&]{ return fabric.step(); }). Returns
/// false if nothing can make progress anymore (deadlock / drained world).
bool drive_all(const std::function<bool()>& progress,
               const std::vector<Collectives::Op*>& ops);

}  // namespace mado::mw
