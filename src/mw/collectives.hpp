// Collective operations over the engine: barrier, broadcast, reduce /
// allreduce (sum of doubles) and alltoall — the regular SPMD communication
// patterns an MPI-like middleware layers on top of Madeleine (paper §2).
//
// Since ROADMAP item 3 these are no longer hard-coded linear fan-outs:
// every operation asks the topology-aware CollectivePlanner for a schedule
// (binomial tree / pipelined ring / bucket / linear, chosen per size and
// node count against the NicModel cost model) and executes the local rank's
// steps over the engine. The planner is pure, so the same schedules the
// engine executes are the ones the property suite and the alpha-beta
// optimality oracle validate offline.
//
// Every operation is a NON-BLOCKING state machine: step() makes progress
// when it can (posting sends immediately; consuming a receive only once
// probe() shows the peer's message has arrived) and returns whether any
// progress was made. This lets all ranks be driven cooperatively from one
// thread in the simulated world — see drive_all() — while threaded
// (socket/UDP-world) applications simply loop step() per rank thread.
//
// Connectivity: the underlying engines need a rail between every pair of
// ranks that exchange messages (fully connecting the SimWorld is the easy
// default). Each ordered pair lazily opens one dedicated channel; steps
// are disambiguated purely by channel FIFO order, so no tags are needed.
// All ranks must derive identical schedules: either every rank sees the
// same engine-local topology (uniform worlds — the default), or the
// application installs one consistent CollTopology on every rank via
// set_topology().
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "core/api.hpp"
#include "core/engine.hpp"
#include "mw/collective_planner.hpp"

namespace mado::mw {

class Collectives {
 public:
  using Rank = CollRank;

  /// `rank_to_node` maps collective ranks to engine NodeIds; identity is
  /// the common case (rank i == node i).
  Collectives(core::Engine& engine, Rank rank, Rank size,
              core::ChannelId channel = 0x7c00,
              std::function<core::NodeId(Rank)> rank_to_node = {});

  class Op {
   public:
    virtual ~Op() = default;
    /// Advance as far as possible without blocking. Returns true if any
    /// progress was made (actions executed).
    virtual bool step() = 0;
    virtual bool done() const = 0;
  };

  /// Barrier (planner default: dissemination, ceil(log2 size) rounds).
  std::unique_ptr<Op> barrier();

  /// Broadcast of `len` bytes from `root`. Non-root buffers are
  /// overwritten; all buffers must stay valid until done().
  std::unique_ptr<Op> bcast(void* buf, std::size_t len, Rank root);

  /// Sum-reduction of `n` doubles into `out` at `root` (out may alias in;
  /// on non-roots out is scratch and may be null for leaf ranks).
  std::unique_ptr<Op> reduce_sum(const double* in, double* out,
                                 std::size_t n, Rank root);

  /// Every rank ends with the global sum in `out`.
  std::unique_ptr<Op> allreduce_sum(const double* in, double* out,
                                    std::size_t n);

  /// Personalized exchange: `send` and `recv` are size*block bytes; rank r
  /// ends with recv[s*block ... ] = sender s's send[r*block ...].
  std::unique_ptr<Op> alltoall(const void* send, void* recv,
                               std::size_t block);

  /// Execute an externally planned schedule for this rank. `in`/`out`
  /// follow the schedule kind's buffer convention (see CollStep::Buf).
  /// Benches plan once and share the instance across all ranks.
  std::unique_ptr<Op> run_schedule(std::shared_ptr<const CollSchedule> s,
                                   const void* in, void* out);

  /// Force one algorithm family for subsequent operations (default Auto:
  /// cheapest by the planner's virtual-time pricing). Clears the plan
  /// cache.
  void set_algorithm(CollAlgo algo);

  /// Replace the planner topology (default: derived lazily from this
  /// rank's engine — uniform rails toward the first peer). Must be called
  /// with an identical topology on every rank. Clears the plan cache.
  void set_topology(CollTopology topo);

  /// The planner (building the engine-derived topology on first use).
  const CollectivePlanner& planner();

  /// Schedule behind the most recently created operation (null before the
  /// first one) — benches and tests inspect algo/chunk/predicted.
  std::shared_ptr<const CollSchedule> last_schedule() const { return last_; }

  Rank rank() const { return rank_; }
  Rank size() const { return size_; }

  /// The lazily opened point-to-point channel toward `peer` (exposed for
  /// custom collective algorithms built on the same pairwise channels).
  core::Channel& channel_to(Rank peer);

  core::Engine& engine() { return engine_; }

 private:
  std::shared_ptr<const CollSchedule> plan_cached(CollKind kind,
                                                  std::uint64_t bytes,
                                                  Rank root,
                                                  std::size_t elem);
  void ensure_planner();

  core::Engine& engine_;
  Rank rank_;
  Rank size_;
  core::ChannelId channel_id_;
  std::function<core::NodeId(Rank)> rank_to_node_;
  std::map<Rank, core::Channel> channels_;

  CollAlgo algo_ = CollAlgo::Auto;
  std::unique_ptr<CollectivePlanner> planner_;
  std::shared_ptr<const CollSchedule> last_;
  std::map<std::tuple<int, int, std::uint64_t, Rank>,
           std::shared_ptr<const CollSchedule>>
      plan_cache_;
};

/// Drive several ranks' operations to completion cooperatively: alternates
/// op steps with `progress` (e.g. [&]{ return fabric.step(); }). Returns
/// false if nothing can make progress anymore (deadlock / drained world).
bool drive_all(const std::function<bool()>& progress,
               const std::vector<Collectives::Op*>& ops);

}  // namespace mado::mw
