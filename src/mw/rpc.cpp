#include "mw/rpc.hpp"

#include "util/assert.hpp"

namespace mado::mw {

namespace {

struct RequestHeader {
  std::uint64_t req_id;
  RpcFunctionId fn;
  std::uint32_t len;
};

struct ResponseHeader {
  std::uint64_t req_id;
  std::uint32_t len;
};

}  // namespace

// ---- client -------------------------------------------------------------

RpcClient::RpcClient(core::Engine& engine, core::NodeId server,
                     core::ChannelId channel, core::TrafficClass cls)
    : engine_(engine), channel_(engine.open_channel(server, channel, cls)) {}

std::uint64_t RpcClient::issue(RpcFunctionId fn, ByteSpan args) {
  const std::uint64_t id = next_req_++;
  RequestHeader hdr{id, fn, static_cast<std::uint32_t>(args.size())};
  core::Message m;
  m.pack(&hdr, sizeof hdr, core::SendMode::Safe);
  m.pack(args.data(), args.size(), core::SendMode::Safe);
  channel_.post(std::move(m));
  return id;
}

Bytes RpcClient::collect(std::uint64_t request_id) {
  for (;;) {
    auto it = ready_.find(request_id);
    if (it != ready_.end()) {
      Bytes out = std::move(it->second);
      ready_.erase(it);
      return out;
    }
    // Responses arrive in request order on the channel; buffer any that
    // belong to other outstanding requests.
    core::IncomingMessage im = channel_.begin_recv();
    ResponseHeader hdr{};
    im.unpack(&hdr, sizeof hdr, core::RecvMode::Express);
    Bytes payload(hdr.len);
    im.unpack(payload.data(), hdr.len, core::RecvMode::Cheaper);
    im.finish();
    ready_.emplace(hdr.req_id, std::move(payload));
  }
}

Bytes RpcClient::call(RpcFunctionId fn, ByteSpan args) {
  return collect(issue(fn, args));
}

// ---- server -------------------------------------------------------------

RpcServer::RpcServer(core::Engine& engine, core::NodeId client,
                     core::ChannelId channel, core::TrafficClass cls)
    : engine_(engine), channel_(engine.open_channel(client, channel, cls)) {}

void RpcServer::register_handler(RpcFunctionId fn, Handler h) {
  MADO_CHECK(h != nullptr);
  handlers_[fn] = std::move(h);
}

void RpcServer::serve_one() {
  core::IncomingMessage im = channel_.begin_recv();
  RequestHeader hdr{};
  im.unpack(&hdr, sizeof hdr, core::RecvMode::Express);
  Bytes args(hdr.len);
  im.unpack(args.data(), hdr.len, core::RecvMode::Cheaper);
  im.finish();

  auto it = handlers_.find(hdr.fn);
  MADO_CHECK_MSG(it != handlers_.end(), "no RPC handler for fn " << hdr.fn);
  Bytes result = it->second(ByteSpan(args));

  ResponseHeader rh{hdr.req_id, static_cast<std::uint32_t>(result.size())};
  core::Message m;
  m.pack(&rh, sizeof rh, core::SendMode::Safe);
  m.pack(result.data(), result.size(), core::SendMode::Safe);
  channel_.post(std::move(m));
  ++served_;
}

}  // namespace mado::mw
