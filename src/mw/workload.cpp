#include "mw/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mado::mw {

namespace {
void sort_schedule(Schedule& s) {
  std::stable_sort(s.begin(), s.end(),
                   [](const Submission& a, const Submission& b) {
                     return a.at < b.at;
                   });
}
}  // namespace

Schedule make_uniform(const UniformSpec& spec) {
  MADO_CHECK(spec.flows > 0 && spec.msgs_per_flow > 0);
  Schedule s;
  for (std::size_t f = 0; f < spec.flows; ++f)
    for (int i = 0; i < spec.msgs_per_flow; ++i)
      s.push_back({static_cast<Nanos>(i) * spec.interval +
                       static_cast<Nanos>(f) * spec.stagger,
                   static_cast<core::ChannelId>(f), spec.size});
  sort_schedule(s);
  return s;
}

Schedule make_bursty(const BurstySpec& spec) {
  MADO_CHECK(spec.flows > 0 && spec.bursts > 0 && spec.burst_len > 0);
  Schedule s;
  Nanos t = 0;
  for (int b = 0; b < spec.bursts; ++b) {
    for (int i = 0; i < spec.burst_len; ++i) {
      for (std::size_t f = 0; f < spec.flows; ++f)
        s.push_back({t, static_cast<core::ChannelId>(f), spec.size});
      t += spec.intra_gap;
    }
    t += spec.inter_gap;
  }
  sort_schedule(s);
  return s;
}

Schedule make_poisson(const PoissonSpec& spec) {
  MADO_CHECK(spec.flows > 0 && spec.msgs_per_flow > 0 &&
             spec.mean_gap_us > 0);
  Schedule s;
  Rng rng(spec.seed);
  for (std::size_t f = 0; f < spec.flows; ++f) {
    double t_us = 0;
    for (int i = 0; i < spec.msgs_per_flow; ++i) {
      // Inverse-CDF exponential sampling; clamp u away from 0.
      const double u = std::max(rng.uniform(), 1e-12);
      t_us += -spec.mean_gap_us * std::log(u);
      s.push_back({usec(t_us), static_cast<core::ChannelId>(f), spec.size});
    }
  }
  sort_schedule(s);
  return s;
}

Schedule make_mixed(const MixedSpec& spec) {
  MADO_CHECK(!spec.flow_sizes.empty() && spec.msgs_per_flow > 0);
  Schedule s;
  for (std::size_t f = 0; f < spec.flow_sizes.size(); ++f)
    for (int i = 0; i < spec.msgs_per_flow; ++i)
      s.push_back({static_cast<Nanos>(i) * spec.interval,
                   static_cast<core::ChannelId>(f), spec.flow_sizes[f]});
  sort_schedule(s);
  return s;
}

std::vector<int> per_flow_counts(const Schedule& s) {
  std::vector<int> counts;
  for (const Submission& sub : s) {
    if (sub.flow >= counts.size()) counts.resize(sub.flow + std::size_t{1}, 0);
    ++counts[sub.flow];
  }
  return counts;
}

std::size_t flow_count(const Schedule& s) { return per_flow_counts(s).size(); }

}  // namespace mado::mw
