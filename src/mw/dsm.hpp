// DSM middleware: a page-based distributed shared memory — the third
// middleware family the paper names (§2: "RPC or DSM"). One node is the
// page home; clients fetch and write back whole pages. Page traffic mixes
// small control messages (requests, acks) with page-sized payloads, which
// is exactly the irregular flow mix the optimizer targets.
//
// Protocol (all on one channel, bidirectional):
//   client → home : DsmRequest { op=Get|Put, page, len } [+ page data if Put]
//   home → client : DsmReply   { op, page, len }          [+ page data if Get]
#pragma once

#include <cstdint>
#include <vector>

#include "core/api.hpp"
#include "core/engine.hpp"

namespace mado::mw {

class DsmHome {
 public:
  DsmHome(core::Engine& engine, core::NodeId client, core::ChannelId channel,
          std::size_t page_size, std::size_t page_count,
          core::TrafficClass cls = core::TrafficClass::PutGet);

  /// Serve one Get or Put (blocking until a request arrives).
  void serve_one();
  void serve(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) serve_one();
  }
  bool pending() const { return channel_.probe(); }

  /// Direct access for tests / initialization.
  Bytes& page(std::size_t idx);
  std::size_t page_size() const { return page_size_; }
  std::size_t page_count() const { return pages_.size(); }
  std::uint64_t gets_served() const { return gets_; }
  std::uint64_t puts_served() const { return puts_; }

 private:
  core::Engine& engine_;
  mutable core::Channel channel_;
  std::size_t page_size_;
  std::vector<Bytes> pages_;
  std::uint64_t gets_ = 0;
  std::uint64_t puts_ = 0;
};

class DsmClient {
 public:
  DsmClient(core::Engine& engine, core::NodeId home, core::ChannelId channel,
            std::size_t page_size,
            core::TrafficClass cls = core::TrafficClass::PutGet);

  /// Fetch a page from the home node (blocking). Requires the home to be
  /// served from another thread (SocketWorld) — in cooperative simulation
  /// use the split-phase variants below.
  Bytes get(std::uint32_t page);
  /// Write a page back to the home node (blocking until acknowledged).
  void put(std::uint32_t page, ByteSpan data);

  /// Split-phase variants for cooperative (single-threaded sim) driving:
  /// issue the request, let the home serve, then complete.
  void issue_get(std::uint32_t page);
  Bytes complete_get(std::uint32_t page);
  void issue_put(std::uint32_t page, ByteSpan data);
  void complete_put(std::uint32_t page);

  std::size_t page_size() const { return page_size_; }

 private:
  core::Engine& engine_;
  core::Channel channel_;
  std::size_t page_size_;
};

}  // namespace mado::mw
