#include "mw/collective_planner.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_map>

#include "core/strategy.hpp"
#include "sim/nic_model.hpp"
#include "util/assert.hpp"

namespace mado::mw {

using core::strategy_detail::chunked_span;
using core::strategy_detail::pipeline_chunk;
using core::strategy_detail::stripe_rail_rate;

const char* to_string(CollKind k) {
  switch (k) {
    case CollKind::Barrier: return "barrier";
    case CollKind::Bcast: return "bcast";
    case CollKind::Reduce: return "reduce";
    case CollKind::Allreduce: return "allreduce";
    case CollKind::Alltoall: return "alltoall";
  }
  return "?";
}

const char* to_string(CollAlgo a) {
  switch (a) {
    case CollAlgo::Auto: return "auto";
    case CollAlgo::Linear: return "linear";
    case CollAlgo::Tree: return "tree";
    case CollAlgo::Ring: return "ring";
    case CollAlgo::Bucket: return "bucket";
  }
  return "?";
}

// ---- CollTopology ----------------------------------------------------------

CollTopology CollTopology::uniform(CollRank n, const drv::Capabilities& caps,
                                   std::size_t rails) {
  MADO_CHECK(n > 0 && rails > 0);
  CollTopology t;
  t.nodes.resize(n);
  for (auto& node : t.nodes)
    node.rails.assign(rails, CollRail{caps, /*up=*/true});
  return t;
}

bool CollTopology::rail_up(CollRank a, CollRank b, RailId r) const {
  MADO_CHECK(a < size() && b < size());
  const auto& ra = nodes[a].rails;
  const auto& rb = nodes[b].rails;
  const auto i = static_cast<std::size_t>(r);
  return i < ra.size() && i < rb.size() && ra[i].up && rb[i].up;
}

RailId CollTopology::best_rail(CollRank a, CollRank b,
                               std::size_t chunk) const {
  MADO_CHECK(a < size() && b < size() && a != b);
  const auto& ra = nodes[a].rails;
  const auto& rb = nodes[b].rails;
  const std::size_t m = std::min(ra.size(), rb.size());
  double best = -1.0;
  RailId pick = 0;
  bool found = false;
  for (std::size_t r = 0; r < m; ++r) {
    if (!ra[r].up || !rb[r].up) continue;
    // The pair moves at the slower endpoint's predicted rate.
    const double rr = std::min(stripe_rail_rate(ra[r].caps, chunk),
                               stripe_rail_rate(rb[r].caps, chunk));
    if (rr > best) {
      best = rr;
      pick = static_cast<RailId>(r);
      found = true;
    }
  }
  MADO_CHECK_MSG(found, "no up rail between ranks " << a << " and " << b);
  return pick;
}

Nanos CollTopology::alpha(CollRank a, CollRank b, RailId rail) const {
  const auto r = static_cast<std::size_t>(rail);
  MADO_CHECK(a < size() && b < size() && r < nodes[a].rails.size());
  (void)b;
  const sim::NicModel model(nodes[a].rails[r].caps.cost);
  return model.busy_time(1, 1) + model.propagation_latency();
}

double CollTopology::rate(CollRank a, CollRank b, RailId rail,
                          std::size_t chunk) const {
  const auto r = static_cast<std::size_t>(rail);
  MADO_CHECK(a < size() && b < size());
  MADO_CHECK(r < nodes[a].rails.size() && r < nodes[b].rails.size());
  return std::min(stripe_rail_rate(nodes[a].rails[r].caps, chunk),
                  stripe_rail_rate(nodes[b].rails[r].caps, chunk));
}

// ---- emission helpers ------------------------------------------------------

namespace {

using Kind = CollStep::Kind;
using Buf = CollStep::Buf;
using u64 = std::uint64_t;

CollRank ceil_log2(CollRank n) {
  CollRank l = 0;
  while ((CollRank{1} << l) < n) ++l;
  return l;
}

bool is_pow2(CollRank n) { return n > 0 && (n & (n - 1)) == 0; }

/// Element-aligned boundary of segment `i` when a `bytes`-long vector of
/// `elem`-sized elements is cut into `nseg` segments.
u64 seg_boundary(u64 bytes, std::size_t elem, CollRank nseg, CollRank i) {
  const u64 ne = bytes / elem;
  return (ne * i / nseg) * elem;
}

/// Emits steps into a schedule in root-relative vrank space. Every matched
/// Send/Recv pair computes (rail, len) from identical inputs on both sides,
/// so zero-length segments are skipped consistently and the per-pair FIFO
/// stays aligned.
struct Emitter {
  const CollTopology& topo;
  CollSchedule& s;
  CollRank n;
  CollRank root;

  CollRank real(CollRank v) const { return (v + root) % n; }

  RailId pair_rail(CollRank vfrom, CollRank vto, u64 len) const {
    return topo.best_rail(real(vfrom), real(vto),
                          static_cast<std::size_t>(len));
  }

  void send(CollRank vfrom, CollRank vto, Buf b, u64 off, u64 len) {
    if (len == 0) return;
    CollStep st;
    st.kind = Kind::Send;
    st.peer = real(vto);
    st.rail = pair_rail(vfrom, vto, len);
    st.buf = b;
    st.offset = off;
    st.len = len;
    s.ranks[real(vfrom)].steps.push_back(st);
  }

  void recv(CollRank vto, CollRank vfrom, Buf b, u64 off, u64 len,
            Kind kind = Kind::Recv) {
    if (len == 0) return;
    CollStep st;
    st.kind = kind;
    st.peer = real(vfrom);
    st.rail = pair_rail(vfrom, vto, len);
    st.buf = b;
    st.offset = off;
    st.len = len;
    s.ranks[real(vto)].steps.push_back(st);
  }

  void recv_reduce(CollRank vto, CollRank vfrom, Buf b, u64 off, u64 len) {
    recv(vto, vfrom, b, off, len, Kind::RecvReduce);
  }

  void copy(CollRank v, Buf dst, u64 dst_off, Buf src, u64 src_off,
            u64 len) {
    if (len == 0) return;
    CollStep st;
    st.kind = Kind::Copy;
    st.buf = dst;
    st.offset = dst_off;
    st.len = len;
    st.src_buf = src;
    st.src_offset = src_off;
    s.ranks[real(v)].steps.push_back(st);
  }

  /// Invoke f(off, len) for each pipeline chunk of [off0, off0+len0).
  template <typename F>
  void for_chunks(u64 off0, u64 len0, F&& f) const {
    const u64 c = s.chunk;
    if (c == 0 || c >= len0) {
      if (len0 > 0) f(off0, len0);
      return;
    }
    for (u64 p = 0; p < len0; p += c)
      f(off0 + p, std::min<u64>(c, len0 - p));
  }

  u64 seg_off(CollRank i) const {
    return seg_boundary(s.bytes, s.elem, n, i);
  }
  u64 seg_len(CollRank i) const { return seg_off(i + 1) - seg_off(i); }
  /// Byte range covering segments [i, i + cnt).
  u64 run_off(CollRank i) const { return seg_off(i); }
  u64 run_len(CollRank i, CollRank cnt) const {
    return seg_boundary(s.bytes, s.elem, n, i + cnt) - seg_off(i);
  }
};

CollRank lowbit(CollRank v) { return v & (~v + 1); }

/// Binomial-tree children of vrank v (ascending distance).
std::vector<CollRank> tree_children(CollRank v, CollRank n) {
  std::vector<CollRank> out;
  const CollRank limit = v == 0 ? n : lowbit(v);
  for (CollRank d = 1; d < limit && v + d < n; d *= 2) out.push_back(v + d);
  return out;
}

// ---- barrier ---------------------------------------------------------------
// Tokens are single bytes: scratch[0] is the constant send source,
// scratch[1] the receive bin (overwritten per round; content is ignored).

void emit_barrier_linear(Emitter& e) {
  for (CollRank v = 1; v < e.n; ++v) {
    e.send(v, 0, Buf::Scratch, 0, 1);
    e.recv(0, v, Buf::Scratch, 1, 1);
  }
  for (CollRank v = 1; v < e.n; ++v) {
    e.send(0, v, Buf::Scratch, 0, 1);
    e.recv(v, 0, Buf::Scratch, 1, 1);
  }
  e.s.scratch_bytes = 2;
}

void emit_barrier_tree(Emitter& e) {
  // Dissemination: round k notifies (v + 2^k) and awaits (v - 2^k).
  for (CollRank v = 0; v < e.n; ++v) {
    for (CollRank dist = 1; dist < e.n; dist *= 2) {
      e.send(v, (v + dist) % e.n, Buf::Scratch, 0, 1);
      e.recv(v, (v + e.n - dist) % e.n, Buf::Scratch, 1, 1);
    }
  }
  e.s.scratch_bytes = 2;
}

void emit_barrier_ring(Emitter& e) {
  // A token travels the ring twice: lap one proves everyone arrived, lap
  // two releases everyone.
  for (int lap = 0; lap < 2; ++lap) {
    e.send(0, 1 % e.n, Buf::Scratch, 0, 1);
    for (CollRank v = 1; v < e.n; ++v) {
      e.recv(v, v - 1, Buf::Scratch, 1, 1);
      e.send(v, (v + 1) % e.n, Buf::Scratch, 0, 1);
    }
    e.recv(0, e.n - 1, Buf::Scratch, 1, 1);
  }
  e.s.scratch_bytes = 2;
}

// ---- bcast -----------------------------------------------------------------
// Payload lives in Out on every rank (the root's Out holds it up front).

void emit_bcast_linear(Emitter& e) {
  for (CollRank v = 1; v < e.n; ++v) {
    e.send(0, v, Buf::Out, 0, e.s.bytes);
    e.recv(v, 0, Buf::Out, 0, e.s.bytes);
  }
}

void emit_bcast_tree(Emitter& e) {
  for (CollRank v = 0; v < e.n; ++v) {
    const auto children = tree_children(v, e.n);
    e.for_chunks(0, e.s.bytes, [&](u64 off, u64 len) {
      if (v != 0) e.recv(v, v - lowbit(v), Buf::Out, off, len);
      // Largest subtree first so the deep branch starts soonest.
      for (auto it = children.rbegin(); it != children.rend(); ++it)
        e.send(v, *it, Buf::Out, off, len);
    });
  }
}

void emit_bcast_ring(Emitter& e) {
  for (CollRank v = 0; v < e.n; ++v) {
    e.for_chunks(0, e.s.bytes, [&](u64 off, u64 len) {
      if (v > 0) e.recv(v, v - 1, Buf::Out, off, len);
      if (v + 1 < e.n) e.send(v, v + 1, Buf::Out, off, len);
    });
  }
}

void emit_bcast_bucket(Emitter& e) {
  // Binomial scatter of n segments, then a ring allgather: moves
  // ~2x the vector instead of log2(n)x.
  auto subtree = [&](CollRank v) {
    const CollRank limit = v == 0 ? e.n : lowbit(v);
    return std::min<CollRank>(limit, e.n - v);
  };
  for (CollRank v = 0; v < e.n; ++v) {
    if (v != 0)
      e.recv(v, v - lowbit(v), Buf::Out, e.run_off(v),
             e.run_len(v, subtree(v)));
    const auto children = tree_children(v, e.n);
    for (auto it = children.rbegin(); it != children.rend(); ++it)
      e.send(v, *it, Buf::Out, e.run_off(*it), e.run_len(*it, subtree(*it)));
    // Ring allgather: in round k, pass segment (v - k) right while segment
    // (v - k - 1) arrives from the left.
    for (CollRank k = 0; k + 1 < e.n; ++k) {
      const CollRank give = (v + e.n - k % e.n) % e.n;
      const CollRank get = (v + 2 * e.n - k % e.n - 1) % e.n;
      e.send(v, (v + 1) % e.n, Buf::Out, e.seg_off(give), e.seg_len(give));
      e.recv(v, (v + e.n - 1) % e.n, Buf::Out, e.seg_off(get),
             e.seg_len(get));
    }
  }
}

// ---- reduce ----------------------------------------------------------------
// Ranks that fold partial sums copy In -> Out first and operate on Out;
// pure leaves ship In directly.

void emit_reduce_linear(Emitter& e) {
  e.copy(0, Buf::Out, 0, Buf::In, 0, e.s.bytes);
  for (CollRank v = 1; v < e.n; ++v) {
    e.send(v, 0, Buf::In, 0, e.s.bytes);
    e.recv_reduce(0, v, Buf::Out, 0, e.s.bytes);
  }
}

void emit_reduce_tree(Emitter& e) {
  for (CollRank v = 0; v < e.n; ++v) {
    const auto children = tree_children(v, e.n);
    const Buf src = children.empty() ? Buf::In : Buf::Out;
    if (!children.empty()) e.copy(v, Buf::Out, 0, Buf::In, 0, e.s.bytes);
    e.for_chunks(0, e.s.bytes, [&](u64 off, u64 len) {
      for (CollRank c : children) e.recv_reduce(v, c, Buf::Out, off, len);
      if (v != 0) e.send(v, v - lowbit(v), src, off, len);
    });
  }
}

void emit_reduce_ring(Emitter& e) {
  // Pipelined chain: partial sums flow n-1 -> 0.
  for (CollRank v = 0; v < e.n; ++v) {
    const bool folds = v + 1 < e.n;
    if (folds) e.copy(v, Buf::Out, 0, Buf::In, 0, e.s.bytes);
    e.for_chunks(0, e.s.bytes, [&](u64 off, u64 len) {
      if (folds) e.recv_reduce(v, v + 1, Buf::Out, off, len);
      if (v > 0) e.send(v, v - 1, folds ? Buf::Out : Buf::In, off, len);
    });
  }
}

// ---- allreduce -------------------------------------------------------------

void emit_allreduce_bucket(Emitter& e) {
  for (CollRank v = 0; v < e.n; ++v)
    e.copy(v, Buf::Out, 0, Buf::In, 0, e.s.bytes);
  if (is_pow2(e.n)) {
    // Recursive halving reduce-scatter + recursive doubling allgather
    // (Rabenseifner). Track each vrank's surviving segment run.
    for (CollRank v = 0; v < e.n; ++v) {
      CollRank s0 = 0, cnt = e.n;
      for (CollRank d = e.n / 2; d >= 1; d /= 2) {
        const CollRank partner = v ^ d;
        const CollRank half = cnt / 2;
        const CollRank keep = (v & d) ? s0 + half : s0;
        const CollRank give = (v & d) ? s0 : s0 + half;
        e.send(v, partner, Buf::Out, e.run_off(give), e.run_len(give, half));
        e.recv_reduce(v, partner, Buf::Out, e.run_off(keep),
                      e.run_len(keep, half));
        s0 = keep;
        cnt = half;
        if (d == 1) break;
      }
      for (CollRank d = 1; d < e.n; d *= 2) {
        const CollRank partner = v ^ d;
        const CollRank mine = (v / d) * d;
        const CollRank theirs = (partner / d) * d;
        e.send(v, partner, Buf::Out, e.run_off(mine), e.run_len(mine, d));
        e.recv(v, partner, Buf::Out, e.run_off(theirs),
               e.run_len(theirs, d));
      }
    }
  } else {
    // Classic ring allreduce: n-1 reduce-scatter rounds leave vrank v
    // owning segment (v+1) mod n, then n-1 allgather rounds circulate it.
    for (CollRank v = 0; v < e.n; ++v) {
      const CollRank right = (v + 1) % e.n;
      const CollRank left = (v + e.n - 1) % e.n;
      for (CollRank k = 0; k + 1 < e.n; ++k) {
        const CollRank give = (v + e.n - k % e.n) % e.n;
        const CollRank get = (v + 2 * e.n - k % e.n - 1) % e.n;
        e.send(v, right, Buf::Out, e.seg_off(give), e.seg_len(give));
        e.recv_reduce(v, left, Buf::Out, e.seg_off(get), e.seg_len(get));
      }
      for (CollRank k = 0; k + 1 < e.n; ++k) {
        const CollRank give = (v + 1 + e.n - k % e.n) % e.n;
        const CollRank get = (v + e.n - k % e.n) % e.n;
        e.send(v, right, Buf::Out, e.seg_off(give), e.seg_len(give));
        e.recv(v, left, Buf::Out, e.seg_off(get), e.seg_len(get));
      }
    }
  }
}

// ---- alltoall --------------------------------------------------------------
// bytes == per-(src,dst) block; In/Out are n*bytes long.

void emit_alltoall_linear(Emitter& e) {
  const u64 b = e.s.bytes;
  for (CollRank v = 0; v < e.n; ++v) {
    e.copy(v, Buf::Out, u64{e.real(v)} * b, Buf::In, u64{e.real(v)} * b, b);
    for (CollRank u = 0; u < e.n; ++u)
      if (u != v) e.send(v, u, Buf::In, u64{e.real(u)} * b, b);
    for (CollRank u = 0; u < e.n; ++u)
      if (u != v) e.recv(v, u, Buf::Out, u64{e.real(u)} * b, b);
  }
}

void emit_alltoall_ring(Emitter& e) {
  // Staggered rotation: in round k, send to (v+k) while (v-k)'s block
  // arrives — every rank keeps exactly one send and one recv in flight.
  const u64 b = e.s.bytes;
  for (CollRank v = 0; v < e.n; ++v) {
    e.copy(v, Buf::Out, u64{e.real(v)} * b, Buf::In, u64{e.real(v)} * b, b);
    for (CollRank k = 1; k < e.n; ++k) {
      const CollRank dst = (v + k) % e.n;
      const CollRank src = (v + e.n - k) % e.n;
      e.send(v, dst, Buf::In, u64{e.real(dst)} * b, b);
      e.recv(v, src, Buf::Out, u64{e.real(src)} * b, b);
    }
  }
}

void emit_alltoall_bruck(Emitter& e) {
  // Bruck: ceil(log2 n) rounds of one aggregated message each, trading
  // bandwidth (each block moves up to log n times) for latency. Scratch
  // holds the rotated working set (n blocks) plus a pack/unpack staging
  // area; Safe sends snapshot payloads at post time, so the reply can land
  // in the same staging bytes.
  const u64 b = e.s.bytes;
  const u64 pack0 = u64{e.n} * b;  // staging area after the working set
  u64 max_blocks = 0;
  for (CollRank v = 0; v < e.n; ++v) {
    for (CollRank i = 0; i < e.n; ++i)
      e.copy(v, Buf::Scratch, u64{i} * b, Buf::In,
             u64{(v + i) % e.n} * b, b);
    for (CollRank d = 1; d < e.n; d *= 2) {
      std::vector<CollRank> sel;
      for (CollRank i = 1; i < e.n; ++i)
        if (i & d) sel.push_back(i);
      max_blocks = std::max<u64>(max_blocks, sel.size());
      for (std::size_t j = 0; j < sel.size(); ++j)
        e.copy(v, Buf::Scratch, pack0 + u64{j} * b, Buf::Scratch,
               u64{sel[j]} * b, b);
      const u64 plen = u64{sel.size()} * b;
      e.send(v, (v + d) % e.n, Buf::Scratch, pack0, plen);
      e.recv(v, (v + e.n - d % e.n) % e.n, Buf::Scratch, pack0, plen);
      for (std::size_t j = 0; j < sel.size(); ++j)
        e.copy(v, Buf::Scratch, u64{sel[j]} * b, Buf::Scratch,
               pack0 + u64{j} * b, b);
    }
    for (CollRank i = 0; i < e.n; ++i)
      e.copy(v, Buf::Out, u64{(e.real(v) + e.n - i % e.n) % e.n} * b,
             Buf::Scratch, u64{i} * b, b);
  }
  e.s.scratch_bytes = (u64{e.n} + max_blocks) * b;
}

}  // namespace

// ---- CollectivePlanner -----------------------------------------------------

CollectivePlanner::CollectivePlanner(CollTopology topo)
    : topo_(std::move(topo)) {
  MADO_CHECK(topo_.size() > 0);
}

namespace {

/// Resolve algorithm aliases: families an op has no distinct shape for
/// degrade to the nearest one that exists.
CollAlgo resolve_algo(CollKind kind, CollAlgo algo) {
  MADO_CHECK(algo != CollAlgo::Auto);
  if (algo == CollAlgo::Bucket &&
      (kind == CollKind::Barrier || kind == CollKind::Reduce))
    return CollAlgo::Tree;
  if (algo == CollAlgo::Bucket && kind == CollKind::Alltoall)
    return CollAlgo::Ring;
  return algo;
}

/// Pipeline depth of the chunked families (hops on the longest path).
std::size_t pipeline_depth(CollKind kind, CollAlgo algo, CollRank n) {
  const std::size_t tree = std::max<std::size_t>(ceil_log2(n), 1);
  const std::size_t chain = std::max<std::size_t>(n - 1, 1);
  const std::size_t d = algo == CollAlgo::Ring ? chain : tree;
  // Allreduce chains a reduce and a bcast of the same vector.
  return kind == CollKind::Allreduce ? 2 * d : d;
}

bool wants_chunking(CollKind kind, CollAlgo algo) {
  if (algo != CollAlgo::Tree && algo != CollAlgo::Ring) return false;
  return kind == CollKind::Bcast || kind == CollKind::Reduce ||
         kind == CollKind::Allreduce;
}

}  // namespace

Nanos CollectivePlanner::simulate(const CollSchedule& s) const {
  const CollRank n = s.size;
  MADO_CHECK(n == topo_.size() && s.ranks.size() == n);
  std::vector<std::size_t> pc(n, 0);
  std::vector<double> t(n, 0.0);
  // Per ordered (sender, receiver) pair: FIFO of predicted arrival times.
  std::unordered_map<std::uint64_t, std::deque<double>> chan;
  auto key = [](CollRank a, CollRank b) {
    return (std::uint64_t{a} << 32) | b;
  };
  std::size_t remaining = 0;
  for (const auto& rp : s.ranks) remaining += rp.steps.size();

  while (remaining > 0) {
    bool progressed = false;
    for (CollRank r = 0; r < n; ++r) {
      const auto& steps = s.ranks[r].steps;
      while (pc[r] < steps.size()) {
        const CollStep& st = steps[pc[r]];
        if (st.kind == Kind::Recv || st.kind == Kind::RecvReduce) {
          auto it = chan.find(key(st.peer, r));
          if (it == chan.end() || it->second.empty()) break;  // blocked
          t[r] = std::max(t[r], it->second.front());
          it->second.pop_front();
        } else if (st.kind == Kind::Send) {
          const auto& caps =
              topo_.nodes[r].rails[static_cast<std::size_t>(st.rail)].caps;
          const auto span = static_cast<double>(chunked_span(
              caps, st.len, static_cast<std::size_t>(st.len)));
          const sim::NicModel model(caps.cost);
          t[r] += span;
          chan[key(r, st.peer)].push_back(
              t[r] + static_cast<double>(model.propagation_latency()));
        }
        // Copy: host memcpy, free in simulated virtual time.
        ++pc[r];
        --remaining;
        progressed = true;
      }
    }
    MADO_CHECK_MSG(progressed || remaining == 0,
                   "collective schedule deadlocked in simulation ("
                       << to_string(s.kind) << "/" << to_string(s.algo)
                       << " n=" << n << ")");
  }
  double worst = 0.0;
  for (CollRank r = 0; r < n; ++r) worst = std::max(worst, t[r]);
  return static_cast<Nanos>(worst);
}

std::shared_ptr<const CollSchedule> CollectivePlanner::plan(
    CollKind kind, std::uint64_t bytes, CollRank root, CollAlgo algo,
    std::size_t elem) const {
  const CollRank n = topo_.size();
  MADO_CHECK(root < n);
  MADO_CHECK(elem > 0 && bytes % elem == 0);
  if (kind == CollKind::Barrier) bytes = 0;

  auto emit_one = [&](CollAlgo a) {
    auto s = std::make_shared<CollSchedule>();
    s->kind = kind;
    s->algo = a;
    s->size = n;
    s->root = (kind == CollKind::Barrier || kind == CollKind::Allreduce ||
               kind == CollKind::Alltoall)
                  ? 0
                  : root;
    s->bytes = bytes;
    s->elem = elem;
    s->ranks.resize(n);

    // Trivial single-rank job: reductions/alltoall still move In -> Out.
    if (n == 1) {
      Emitter e{topo_, *s, n, s->root};
      if (kind == CollKind::Reduce || kind == CollKind::Allreduce ||
          kind == CollKind::Alltoall)
        e.copy(0, Buf::Out, 0, Buf::In, 0, bytes);
      s->predicted = 0;
      return s;
    }

    if (wants_chunking(kind, a) && bytes > 0) {
      // Price the pipeline with a representative rail (root toward its
      // first partner); chunks below the rendezvous threshold would trade
      // the bulk path for per-message overhead, so floor there.
      const CollRank r0 = s->root;
      const CollRank r1 = (r0 + 1) % n;
      const RailId rail =
          topo_.best_rail(r0, r1, static_cast<std::size_t>(bytes));
      const auto& caps = topo_.nodes[r0].rails[rail].caps;
      const std::size_t min_chunk =
          std::max<std::size_t>(elem, caps.rdv_threshold);
      std::size_t chunk = pipeline_chunk(
          caps, bytes, pipeline_depth(kind, a, n), min_chunk);
      // Respect element alignment and keep the schedule size bounded.
      const u64 max_chunks = 512;
      if ((bytes + chunk - 1) / chunk > max_chunks)
        chunk = static_cast<std::size_t>((bytes + max_chunks - 1) /
                                         max_chunks);
      chunk = std::max(elem, chunk / elem * elem);
      if (chunk < bytes) s->chunk = chunk;
    }

    Emitter e{topo_, *s, n, s->root};
    switch (kind) {
      case CollKind::Barrier:
        if (a == CollAlgo::Linear) emit_barrier_linear(e);
        else if (a == CollAlgo::Ring) emit_barrier_ring(e);
        else emit_barrier_tree(e);
        break;
      case CollKind::Bcast:
        if (a == CollAlgo::Linear) emit_bcast_linear(e);
        else if (a == CollAlgo::Ring) emit_bcast_ring(e);
        else if (a == CollAlgo::Bucket) emit_bcast_bucket(e);
        else emit_bcast_tree(e);
        break;
      case CollKind::Reduce:
        if (a == CollAlgo::Linear) emit_reduce_linear(e);
        else if (a == CollAlgo::Ring) emit_reduce_ring(e);
        else emit_reduce_tree(e);
        break;
      case CollKind::Allreduce:
        if (a == CollAlgo::Linear) {
          emit_reduce_linear(e);
          emit_bcast_linear(e);
        } else if (a == CollAlgo::Ring) {
          emit_reduce_ring(e);
          emit_bcast_ring(e);
        } else if (a == CollAlgo::Bucket) {
          emit_allreduce_bucket(e);
        } else {
          emit_reduce_tree(e);
          emit_bcast_tree(e);
        }
        break;
      case CollKind::Alltoall:
        if (a == CollAlgo::Linear) emit_alltoall_linear(e);
        else if (a == CollAlgo::Ring) emit_alltoall_ring(e);
        else emit_alltoall_bruck(e);
        break;
    }
    s->predicted = simulate(*s);
    return s;
  };

  if (algo != CollAlgo::Auto) return emit_one(resolve_algo(kind, algo));

  // Auto: price every distinct candidate family and keep the cheapest
  // (ties go to the earlier candidate — the tree family).
  std::vector<CollAlgo> cands;
  switch (kind) {
    case CollKind::Barrier:
      cands = {CollAlgo::Tree, CollAlgo::Ring, CollAlgo::Linear};
      break;
    case CollKind::Bcast:
      cands = {CollAlgo::Tree, CollAlgo::Bucket, CollAlgo::Ring,
               CollAlgo::Linear};
      break;
    case CollKind::Reduce:
      cands = {CollAlgo::Tree, CollAlgo::Ring, CollAlgo::Linear};
      break;
    case CollKind::Allreduce:
      cands = {CollAlgo::Tree, CollAlgo::Bucket, CollAlgo::Ring,
               CollAlgo::Linear};
      break;
    case CollKind::Alltoall:
      cands = {CollAlgo::Tree, CollAlgo::Ring, CollAlgo::Linear};
      break;
  }
  std::shared_ptr<const CollSchedule> best;
  for (CollAlgo a : cands) {
    auto s = emit_one(a);
    if (!best || s->predicted < best->predicted) best = std::move(s);
  }
  return best;
}

}  // namespace mado::mw
