// Topology-aware collective planner (ROADMAP item 3).
//
// The paper optimizes point-to-point packet schedules against a NIC cost
// model; this module applies the same idea one level up. Given the set of
// participating nodes and their per-rail Capabilities / NicModel costs, the
// planner emits an *executable schedule* — per-rank Send/Recv/RecvReduce/
// Copy steps in local program order — for barrier, bcast, reduce, allreduce
// and alltoall, choosing between binomial-tree, ring (pipelined chain),
// bucket (reduce-scatter + allgather / Bruck) and the old linear fan-out by
// pricing each candidate with a virtual-time simulation over the same
// strategy_detail::stripe_rail_rate arithmetic the stripe planner uses
// (PR 4). Large vectors are chunked so tree and chain schedules pipeline:
// the chunk size minimizes the classic (depth - 1 + ceil(bytes/chunk))
// pipeline bound via strategy_detail::pipeline_chunk.
//
// The planner is pure: no engine, no sockets, no clock. mw::Collectives
// executes its schedules over a live engine; tests validate them
// symbolically (tests/mw/test_collective_planner.cpp) and against the
// alpha-beta optimality oracle (tests/mw/collective_oracle.hpp) without
// ever touching a transport.
//
// Cross-rank ordering needs no step identifiers: steps execute strictly in
// local order and every ordered rank pair shares one FIFO channel, so the
// k-th Send a->b always pairs with the k-th Recv b<-a. A schedule is valid
// iff that matching is deadlock-free and moves the right bytes — exactly
// what the property suite proves per (algorithm, size, topology, seed).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.hpp"
#include "drivers/capabilities.hpp"
#include "util/clock.hpp"

namespace mado::mw {

using core::RailId;

using CollRank = std::uint32_t;

enum class CollKind : std::uint8_t {
  Barrier,
  Bcast,
  Reduce,
  Allreduce,
  Alltoall,
};

enum class CollAlgo : std::uint8_t {
  Auto,    ///< planner picks the cheapest candidate by predicted time
  Linear,  ///< the old star fan-out (baseline; O(n) at the root)
  Tree,    ///< binomial tree (alltoall: Bruck; barrier: dissemination)
  Ring,    ///< pipelined chain (alltoall: rotation exchange)
  Bucket,  ///< reduce-scatter + allgather (bcast: scatter + ring allgather)
};

const char* to_string(CollKind k);
const char* to_string(CollAlgo a);

/// One rail of one node as the planner sees it.
struct CollRail {
  drv::Capabilities caps;
  bool up = true;
};

struct CollNode {
  std::vector<CollRail> rails;
};

/// The planner's model of the participating fabric: per-node, per-rail
/// capabilities and health. Pure data — Collectives builds one lazily from
/// a live Engine; tests and benches synthesize arbitrary ones.
struct CollTopology {
  std::vector<CollNode> nodes;

  /// n identical nodes with `rails` copies of `caps` each.
  static CollTopology uniform(CollRank n, const drv::Capabilities& caps,
                              std::size_t rails = 1);

  CollRank size() const { return static_cast<CollRank>(nodes.size()); }

  /// Rail `r` usable between `a` and `b` (exists and Up on both ends).
  bool rail_up(CollRank a, CollRank b, RailId r) const;
  /// Best usable rail a->b by predicted `chunk`-byte rate (sender side).
  /// CHECK-fails when no rail is up between the pair — the planner refuses
  /// to schedule over a dead pair rather than emit an unrunnable step.
  RailId best_rail(CollRank a, CollRank b, std::size_t chunk) const;

  /// Per-hop overhead floor for a minimal message a->b on `rail` (ns).
  Nanos alpha(CollRank a, CollRank b, RailId rail) const;
  /// Predicted sender throughput a->b on `rail` in bytes/ns for
  /// `chunk`-byte units (stripe_rail_rate pricing).
  double rate(CollRank a, CollRank b, RailId rail, std::size_t chunk) const;
};

/// One executable step. Steps run strictly in local (vector) order.
struct CollStep {
  enum class Kind : std::uint8_t {
    Send,        ///< post buf[offset, offset+len) to peer
    Recv,        ///< receive len bytes from peer into buf[offset, ...)
    RecvReduce,  ///< receive len bytes from peer, sum (doubles) into buf
    Copy,        ///< local move: src_buf[src_offset, +len) -> buf[offset,..)
  };
  /// Which logical buffer a step touches. In is the caller's read-only
  /// input (contribution / alltoall send blocks), Out the result buffer,
  /// Scratch planner-sized staging (schedule.scratch_bytes, zero-filled).
  enum class Buf : std::uint8_t { In, Out, Scratch };

  Kind kind = Kind::Copy;
  CollRank peer = 0;  // Send/Recv/RecvReduce
  RailId rail = 0;    // Send/Recv/RecvReduce
  Buf buf = Buf::Out;
  std::uint64_t offset = 0;
  std::uint64_t len = 0;
  Buf src_buf = Buf::In;  // Copy only
  std::uint64_t src_offset = 0;
};

struct RankPlan {
  std::vector<CollStep> steps;
};

/// A complete schedule: one plan per rank plus the parameters it encodes.
/// Shared immutably — every rank of a job can execute the same instance.
struct CollSchedule {
  CollKind kind = CollKind::Barrier;
  CollAlgo algo = CollAlgo::Linear;  // the algorithm actually emitted
  CollRank size = 0;
  CollRank root = 0;
  /// Vector bytes (bcast/reduce/allreduce); per-(src,dst) block bytes for
  /// alltoall; 0 for barrier.
  std::uint64_t bytes = 0;
  std::size_t elem = 1;          ///< reduction element size (8 = double)
  std::size_t chunk = 0;         ///< pipeline chunk, 0 = unchunked
  std::uint64_t scratch_bytes = 0;
  Nanos predicted = 0;           ///< planner's virtual-time estimate
  std::vector<RankPlan> ranks;
};

class CollectivePlanner {
 public:
  explicit CollectivePlanner(CollTopology topo);

  const CollTopology& topology() const { return topo_; }

  /// Plan `kind` over the topology. `bytes` is the vector size in bytes
  /// (multiple of `elem` for reductions); for Alltoall it is the
  /// per-(src,dst) block size. Auto prices every applicable candidate via
  /// simulate() and keeps the cheapest. Algorithms that do not apply
  /// degrade to their nearest family (Bucket reduce -> Tree, Bucket
  /// alltoall -> Ring); schedule.algo records what was actually emitted.
  std::shared_ptr<const CollSchedule> plan(CollKind kind, std::uint64_t bytes,
                                           CollRank root = 0,
                                           CollAlgo algo = CollAlgo::Auto,
                                           std::size_t elem = 1) const;

  /// Virtual-time execution of `s` over the topology: per-rank cursors,
  /// FIFO per-pair channel matching, sends charge the sender's injection
  /// span (chunked_span) and land after the rail's propagation latency.
  /// Returns the completion time of the slowest rank. CHECK-fails if the
  /// schedule deadlocks (a planner bug by definition).
  Nanos simulate(const CollSchedule& s) const;

 private:
  CollTopology topo_;
};

}  // namespace mado::mw
