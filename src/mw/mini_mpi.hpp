// Mini-MPI: a tag-matching message-passing middleware on the public engine
// API — the "regular communication schemes commonly encountered with
// MPI-like programming environments" of paper §2.
//
// Every MPI message travels as a structured mado message:
//   fragment 0 (express): MpiHeader { tag, payload length }
//   fragment 1 (cheaper): payload
// so even this regular middleware produces the header+payload fragment
// pattern the optimizer aggregates across flows.
//
// Tag matching is receiver-side: recv(tag) drains incoming messages into an
// unexpected queue until the requested tag shows up, like a real MPI's
// unexpected-message queue.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "core/api.hpp"
#include "core/engine.hpp"

namespace mado::mw {

class MpiEndpoint {
 public:
  using Tag = std::int32_t;

  /// Opens channel `channel` toward `peer` (both sides must construct with
  /// the same channel id, like every mado channel).
  MpiEndpoint(core::Engine& engine, core::NodeId peer,
              core::ChannelId channel,
              core::TrafficClass cls = core::TrafficClass::SmallEager);

  /// Non-blocking send; the returned handle completes when the data has
  /// left this node. The buffer must stay valid until then.
  core::SendHandle isend(Tag tag, const void* buf, std::size_t len);

  /// Blocking send (isend + wait).
  void send(Tag tag, const void* buf, std::size_t len);

  /// Blocking receive of a message with exactly `tag`. `len` must equal the
  /// sender's payload size (checked). Messages with other tags encountered
  /// while waiting are buffered.
  void recv(Tag tag, void* buf, std::size_t len);

  /// Blocking receive of the next message regardless of tag.
  struct AnyMessage {
    Tag tag = 0;
    Bytes payload;
  };
  AnyMessage recv_any();

  /// True if a message with `tag` can be received without blocking
  /// (already buffered). Does not poll the network.
  bool has_buffered(Tag tag) const;

  core::Engine& engine() { return engine_; }
  core::Channel& channel() { return channel_; }

 private:
  struct Pending {
    Tag tag;
    Bytes payload;
  };
  /// Pull exactly one message off the wire into `out` (blocking).
  Pending pull_one();

  core::Engine& engine_;
  core::Channel channel_;
  std::deque<Pending> unexpected_;
};

}  // namespace mado::mw
