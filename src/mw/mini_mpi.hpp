// Mini-MPI: a tag-matching message-passing middleware on the public engine
// API — the "regular communication schemes commonly encountered with
// MPI-like programming environments" of paper §2.
//
// Every MPI message travels as a structured mado message:
//   fragment 0 (express): MpiHeader { tag, payload length }
//   fragment 1 (cheaper): payload
// so even this regular middleware produces the header+payload fragment
// pattern the optimizer aggregates across flows.
//
// Tag matching is receiver-side: recv(tag) drains incoming messages into an
// unexpected queue until the requested tag shows up, like a real MPI's
// unexpected-message queue.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "core/api.hpp"
#include "core/engine.hpp"
#include "mw/collectives.hpp"

namespace mado::mw {

class MpiEndpoint {
 public:
  using Tag = std::int32_t;

  /// Opens channel `channel` toward `peer` (both sides must construct with
  /// the same channel id, like every mado channel).
  MpiEndpoint(core::Engine& engine, core::NodeId peer,
              core::ChannelId channel,
              core::TrafficClass cls = core::TrafficClass::SmallEager);

  /// Non-blocking send; the returned handle completes when the data has
  /// left this node. The buffer must stay valid until then.
  core::SendHandle isend(Tag tag, const void* buf, std::size_t len);

  /// Blocking send (isend + wait).
  void send(Tag tag, const void* buf, std::size_t len);

  /// Blocking receive of a message with exactly `tag`. `len` must equal the
  /// sender's payload size (checked). Messages with other tags encountered
  /// while waiting are buffered.
  void recv(Tag tag, void* buf, std::size_t len);

  /// Blocking receive of the next message regardless of tag.
  struct AnyMessage {
    Tag tag = 0;
    Bytes payload;
  };
  AnyMessage recv_any();

  /// True if a message with `tag` can be received without blocking
  /// (already buffered). Does not poll the network.
  bool has_buffered(Tag tag) const;

  core::Engine& engine() { return engine_; }
  core::Channel& channel() { return channel_; }

 private:
  struct Pending {
    Tag tag;
    Bytes payload;
  };
  /// Pull exactly one message off the wire into `out` (blocking).
  Pending pull_one();

  core::Engine& engine_;
  core::Channel channel_;
  std::deque<Pending> unexpected_;
};

/// MPI-style *blocking* collectives for an SPMD job of `size` ranks,
/// routed through the topology-aware CollectivePlanner: each call plans
/// (tree/ring/bucket/linear, cheapest by the cost model), executes this
/// rank's schedule and returns when the operation completes locally.
///
/// Threaded worlds (socket/UDP) just call these from each rank's thread;
/// the cooperative sim world must install a progress hook first
/// (set_progress([&]{ return world.fabric().step(); })) so blocked steps
/// can pump the fabric.
class MpiCommunicator {
 public:
  using Rank = Collectives::Rank;

  MpiCommunicator(core::Engine& engine, Rank rank, Rank size,
                  core::ChannelId channel = 0x7d00,
                  std::function<core::NodeId(Rank)> rank_to_node = {});

  /// Progress source for cooperative (single-threaded) worlds. Returning
  /// false means the world is drained; a still-blocked collective then
  /// CHECK-fails instead of spinning forever.
  void set_progress(std::function<bool()> progress);

  void barrier();
  void bcast(void* buf, std::size_t len, Rank root);
  void reduce_sum(const double* in, double* out, std::size_t n, Rank root);
  void allreduce_sum(const double* in, double* out, std::size_t n);
  void alltoall(const void* send, void* recv, std::size_t block);

  Rank rank() const { return coll_.rank(); }
  Rank size() const { return coll_.size(); }
  /// The underlying planner-backed collectives (algorithm forcing,
  /// last_schedule inspection, non-blocking ops).
  Collectives& collectives() { return coll_; }

 private:
  void run(std::unique_ptr<Collectives::Op> op);

  Collectives coll_;
  std::function<bool()> progress_;
};

}  // namespace mado::mw
