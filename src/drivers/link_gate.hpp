// Exactly-once link-down reporting, shared by every threaded driver.
//
// The driver contract demands a strict teardown order when a link dies:
// every packet that made it over the wire is delivered, every accepted send
// resolves to exactly one completion or failure, and only THEN does
// on_link_down fire — at most once, and never for a deliberate local
// close(). Both the socketpair driver (whose TX/RX threads can observe the
// break concurrently) and the UDP driver (whose event loop and progress
// callers race the same way) need the identical protocol, so it lives here
// instead of being re-derived per driver.
//
// Protocol:
//   IO threads        — mark_broken() when the wire dies (any number of
//                       threads, any number of times).
//   submit path       — accept() when a send is taken, before it can fail.
//   progress()        — resolve() as each completion/failure event is
//                       HANDED TO THE HANDLER (not when the IO thread
//                       enqueues it), then should_report_link_down() last.
//   close()           — mark_closed_once() gates teardown and permanently
//                       suppresses the report (local close is not a fault).
//
// Why exactly-once holds: `reported` is claimed with a single exchange, so
// two progress() calls racing past the broken/outstanding checks cannot
// both report. Why no report is lost: outstanding_ is decremented only by
// the progress path itself, immediately before the handler callback — so
// whichever progress() call resolves the LAST doomed send observes
// outstanding_ == 0 on its own gate check in the same invocation, after
// every failure has already been delivered. A concurrent IO thread pushing
// new failure events cannot recreate outstanding_ > 0 without a matching
// accept() that happened before the break was drained.
#pragma once

#include <atomic>
#include <cstdint>

namespace mado::drv {

class LinkDownGate {
 public:
  /// Submit path: a send was accepted and will resolve exactly once.
  void accept() { outstanding_.fetch_add(1, std::memory_order_acq_rel); }

  /// Progress path: one accepted send just resolved (completion OR failure
  /// was handed to the handler).
  void resolve() { outstanding_.fetch_sub(1, std::memory_order_acq_rel); }

  /// IO path: the wire is dead. Idempotent, callable from any thread.
  void mark_broken() { broken_.store(true, std::memory_order_release); }

  /// Teardown: returns true exactly once (the caller runs close teardown);
  /// also suppresses any future link-down report.
  bool mark_closed_once() { return !closed_.exchange(true); }

  bool broken() const { return broken_.load(std::memory_order_acquire); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }
  std::uint64_t outstanding() const {
    return outstanding_.load(std::memory_order_acquire);
  }
  bool reported() const { return reported_.load(std::memory_order_acquire); }

  /// Progress path, called AFTER draining events: true exactly once, and
  /// only when the break is fully resolved (no send still awaits its
  /// failure) on a link that was not locally closed.
  bool should_report_link_down() {
    return broken() && outstanding() == 0 && !closed() &&
           !reported_.exchange(true, std::memory_order_acq_rel);
  }

 private:
  std::atomic<bool> broken_{false};
  std::atomic<bool> closed_{false};
  std::atomic<bool> reported_{false};
  /// Sends accepted but not yet resolved by a progress() delivery. Gates
  /// the report: it must not fire while a doomed send still awaits its
  /// on_send_failed.
  std::atomic<std::uint64_t> outstanding_{0};
};

}  // namespace mado::drv
