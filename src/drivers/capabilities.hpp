// Driver capabilities.
//
// The paper: "Optimizations are parameterized by the capabilities of the
// underlying network drivers." This struct is that parameterization: every
// strategy decision (aggregate or not, eager or rendezvous, gather or
// flatten, which track) consults a Capabilities instance, never a concrete
// driver type.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/nic_model.hpp"

namespace mado::drv {

/// Virtual track (multiplexing unit) index within one endpoint.
/// Track 0 carries eager data and control; track 1 carries rendezvous bulk.
using TrackId = std::uint8_t;
constexpr TrackId kTrackEager = 0;
constexpr TrackId kTrackBulk = 1;

struct Capabilities {
  std::string name = "generic";

  /// Maximum payload of one eager-track packet. Aggregation strategies fill
  /// packets up to this bound.
  std::size_t max_eager = 8 * 1024;

  /// Fragments of at least this many bytes are sent with the rendezvous
  /// protocol (RTS/CTS + bulk track) instead of eagerly.
  std::size_t rdv_threshold = 32 * 1024;

  /// Whether the NIC consumes gather lists natively. When false, multi-
  /// segment packets must be flattened into a staging buffer first, and the
  /// cost model charges the copy.
  bool gather_scatter = true;

  /// Maximum number of gather segments per send when gather_scatter is set.
  std::size_t max_gather_segments = 32;

  /// Number of virtual tracks the endpoint exposes (>= 1). With a single
  /// track, bulk data and eager packets share one multiplexing unit.
  std::size_t track_count = 2;

  /// Maximum packets in flight per track before the engine considers the
  /// track busy. The paper's design keeps this at 1: while the NIC sends
  /// one packet, the optimizer accumulates a backlog.
  std::size_t track_depth = 1;

  /// Whether the wire itself guarantees delivery. Stream and shared-memory
  /// transports are lossless; datagram transports (UDP) are not and MUST be
  /// paired with the engine's go-back-N layer — Engine::add_rail rejects a
  /// lossy rail unless cfg.reliability is on.
  bool lossless = true;

  /// For datagram transports: the largest single datagram the driver emits
  /// (header + payload). 0 for stream/copy transports. Frames larger than
  /// the MTU payload are fragmented by the driver and reassembled on the
  /// receive side; this is advertisement, not a send-size limit.
  std::size_t datagram_mtu = 0;

  /// Cost-model parameters. The simulated driver charges time with these;
  /// strategies use the same numbers to score candidate packings, so the
  /// optimizer and the network agree on what "cheaper" means.
  sim::NicModelParams cost;

  /// Per-rail bandwidth hint in bytes/µs, for schedulers (stripe placement,
  /// least-loaded rail selection) when the cost model's link rate is not
  /// representative of this particular rail — e.g. a TCP driver whose
  /// profile says GigE but whose path is actually 10G, or an administrator
  /// capping a rail's share. 0 means "no hint": consumers fall back to
  /// cost.link_bytes_per_us via effective_bandwidth().
  double bandwidth_hint_bytes_per_us = 0.0;

  /// The bandwidth schedulers should plan with: the explicit hint when one
  /// is set, the cost model's link rate otherwise.
  double effective_bandwidth() const {
    return bandwidth_hint_bytes_per_us > 0.0 ? bandwidth_hint_bytes_per_us
                                             : cost.link_bytes_per_us;
  }

  sim::NicModel model() const { return sim::NicModel(cost); }
};

}  // namespace mado::drv
