// Capability profiles for the network technologies the paper names.
//
// Numbers are calibrated to published 2006-era microbenchmarks (orders of
// magnitude, not exact): Myrinet-2000/MX (~3 µs latency, ~250 MB/s, gather
// support, small-message PIO), Quadrics QsNet II/Elan4 (~1.5 µs, ~900 MB/s,
// native put/get), and plain GigE/TCP (~50 µs, ~110 MB/s, no gather —
// multi-segment packets must be flattened). The engine never matches on the
// profile name; everything flows through Capabilities fields, which is the
// paper's "parameterized by the capabilities of the underlying network
// drivers".
#pragma once

#include <string>
#include <vector>

#include "drivers/capabilities.hpp"

namespace mado::drv {

Capabilities mx_myrinet_profile();
Capabilities elan_quadrics_profile();
Capabilities tcp_gige_profile();
/// Idealized zero-latency profile for logic-only unit tests.
Capabilities test_profile();

/// Look up a profile by name ("mx", "elan", "tcp", "shm", "udp", "test").
/// Throws CheckError for unknown names.
Capabilities profile_by_name(const std::string& name);

/// Names accepted by profile_by_name, in a stable order.
std::vector<std::string> profile_names();

}  // namespace mado::drv
