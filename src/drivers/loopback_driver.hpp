// Loopback endpoint: zero-cost, single-threaded, in-memory transport used by
// unit tests that exercise engine logic without timing effects. Completions
// and deliveries are queued by send() and handed to the handlers on the next
// progress() call of the respective endpoint (never synchronously), so the
// driver contract matches the real drivers.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <utility>

#include "drivers/driver.hpp"

namespace mado::drv {

class LoopbackEndpoint final : public DriverEndpoint {
 public:
  struct PairResult {
    std::unique_ptr<LoopbackEndpoint> a;
    std::unique_ptr<LoopbackEndpoint> b;
  };
  static PairResult make_pair(const Capabilities& caps_a,
                              const Capabilities& caps_b);
  static PairResult make_pair(const Capabilities& caps) {
    return make_pair(caps, caps);
  }

  ~LoopbackEndpoint() override;

  const Capabilities& caps() const override { return caps_; }
  void set_handler(EndpointHandler* handler) override;
  void send(TrackId track, const GatherList& gl, std::uint64_t token) override;
  void progress() override;

  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  struct Shared;
  LoopbackEndpoint(Capabilities caps, std::shared_ptr<Shared> shared, int side);

  Capabilities caps_;
  std::shared_ptr<Shared> shared_;
  int side_;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace mado::drv
