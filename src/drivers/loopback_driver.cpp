#include "drivers/loopback_driver.hpp"

#include "util/assert.hpp"

namespace mado::drv {

struct LoopbackEndpoint::Shared {
  struct Completion {
    TrackId track;
    std::uint64_t token;
  };
  struct Arrival {
    TrackId track;
    Bytes payload;
  };
  EndpointHandler* handler[2] = {nullptr, nullptr};
  bool alive[2] = {false, false};
  std::deque<Completion> completions[2];  // indexed by sender side
  std::deque<Arrival> inbox[2];           // indexed by receiver side
};

LoopbackEndpoint::PairResult LoopbackEndpoint::make_pair(
    const Capabilities& caps_a, const Capabilities& caps_b) {
  auto shared = std::make_shared<Shared>();
  shared->alive[0] = shared->alive[1] = true;
  PairResult r;
  r.a.reset(new LoopbackEndpoint(caps_a, shared, 0));
  r.b.reset(new LoopbackEndpoint(caps_b, shared, 1));
  return r;
}

LoopbackEndpoint::LoopbackEndpoint(Capabilities caps,
                                   std::shared_ptr<Shared> shared, int side)
    : caps_(std::move(caps)), shared_(std::move(shared)), side_(side) {}

LoopbackEndpoint::~LoopbackEndpoint() {
  shared_->alive[side_] = false;
  shared_->handler[side_] = nullptr;
}

void LoopbackEndpoint::set_handler(EndpointHandler* handler) {
  shared_->handler[side_] = handler;
}

void LoopbackEndpoint::send(TrackId track, const GatherList& gl,
                            std::uint64_t token) {
  MADO_CHECK(track < caps_.track_count);
  shared_->completions[side_].push_back({track, token});
  shared_->inbox[1 - side_].push_back({track, gl.flatten()});
  ++packets_sent_;
}

void LoopbackEndpoint::progress() {
  EndpointHandler* h = shared_->handler[side_];
  if (!h) return;
  // Drain queues through a swap so handler code may trigger further sends
  // without invalidating iteration.
  while (!shared_->completions[side_].empty()) {
    auto c = shared_->completions[side_].front();
    shared_->completions[side_].pop_front();
    h->on_send_complete(c.track, c.token);
  }
  while (!shared_->inbox[side_].empty()) {
    auto a = std::move(shared_->inbox[side_].front());
    shared_->inbox[side_].pop_front();
    h->on_packet(a.track, std::move(a.payload));
  }
}

}  // namespace mado::drv
