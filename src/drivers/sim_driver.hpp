// Simulated NIC endpoint on top of the discrete-event fabric.
//
// Models, per direction, a NIC whose tracks share one physical link:
// injections serialize on the link (start = max(now, link_free)), each
// charged with the LogGP-style NicModel of the *sending* side's
// capabilities. Completion fires when the wire accepts the last byte;
// delivery fires one propagation latency later. Both are fabric events, so
// the driver contract (no synchronous callbacks from send()) holds.
//
// Endpoints are created in pairs over a shared LinkState kept alive by
// shared_ptr, so events in flight never dangle even if one endpoint is
// destroyed first (delivery to a dead endpoint is dropped).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "drivers/driver.hpp"
#include "sim/fabric.hpp"

namespace mado::drv {

class SimEndpoint final : public DriverEndpoint {
 public:
  struct PairResult {
    std::unique_ptr<SimEndpoint> a;
    std::unique_ptr<SimEndpoint> b;
  };

  /// Create both sides of a link. `caps_a`/`caps_b` describe each side's
  /// NIC; pass the same value twice for a homogeneous link.
  static PairResult make_pair(sim::Fabric& fabric, const Capabilities& caps_a,
                              const Capabilities& caps_b);
  static PairResult make_pair(sim::Fabric& fabric, const Capabilities& caps) {
    return make_pair(fabric, caps, caps);
  }

  ~SimEndpoint() override;

  const Capabilities& caps() const override { return caps_; }
  void set_handler(EndpointHandler* handler) override;
  void send(TrackId track, const GatherList& gl, std::uint64_t token) override;
  void progress() override {}  // events run from the shared Fabric loop
  std::string describe() const override;

  // Observability for tests/benches.
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t flatten_copies() const { return flatten_copies_; }

 private:
  struct LinkState;

  SimEndpoint(sim::Fabric& fabric, Capabilities caps,
              std::shared_ptr<LinkState> link, int side);

  sim::Fabric& fabric_;
  Capabilities caps_;
  std::shared_ptr<LinkState> link_;
  int side_;  // 0 or 1; peer is 1 - side_
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t flatten_copies_ = 0;
};

}  // namespace mado::drv
