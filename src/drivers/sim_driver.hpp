// Simulated NIC endpoint on top of the discrete-event fabric.
//
// Models, per direction, a NIC whose tracks share one physical link:
// injections serialize on the link (start = max(now, link_free)), each
// charged with the LogGP-style NicModel of the *sending* side's
// capabilities. Completion fires when the wire accepts the last byte;
// delivery fires one propagation latency later. Both are fabric events, so
// the driver contract (no synchronous callbacks from send()) holds.
//
// Endpoints are created in pairs over a shared LinkState kept alive by
// shared_ptr, so events in flight never dangle even if one endpoint is
// destroyed first (delivery to a dead endpoint is dropped).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "drivers/driver.hpp"
#include "sim/fabric.hpp"

namespace mado::drv {

/// Deterministic fault injection for one direction of a simulated link.
/// Probabilities are evaluated per packet from a seeded xoshiro stream, so
/// a given (plan, traffic) pair replays bit-identically. All faults model
/// the *wire*: the local NIC still reports on_send_complete normally.
struct FaultPlan {
  double drop = 0.0;       ///< P(packet vanishes in transit)
  double corrupt = 0.0;    ///< P(one payload bit flips in transit)
  double duplicate = 0.0;  ///< P(packet is delivered twice)
  double reorder = 0.0;    ///< P(delivery is delayed past later packets)
  Nanos reorder_delay = 5 * kNanosPerMicro;  ///< extra latency when reordered
  std::uint64_t seed = 0x5eedu;
  /// When > 0: the whole link hard-fails at this simulated time (both
  /// directions), as if the cable were pulled. Equivalent to calling
  /// fail_link() at that instant.
  Nanos fail_at = 0;

  bool active() const {
    return drop > 0 || corrupt > 0 || duplicate > 0 || reorder > 0 ||
           fail_at > 0;
  }
};

/// What the injector actually did (per TX direction); for tests.
struct FaultStats {
  std::uint64_t dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
};

class SimEndpoint final : public DriverEndpoint {
 public:
  struct PairResult {
    std::unique_ptr<SimEndpoint> a;
    std::unique_ptr<SimEndpoint> b;
  };

  /// Create both sides of a link. `caps_a`/`caps_b` describe each side's
  /// NIC; pass the same value twice for a homogeneous link.
  static PairResult make_pair(sim::Fabric& fabric, const Capabilities& caps_a,
                              const Capabilities& caps_b);
  static PairResult make_pair(sim::Fabric& fabric, const Capabilities& caps) {
    return make_pair(fabric, caps, caps);
  }

  ~SimEndpoint() override;

  const Capabilities& caps() const override { return caps_; }
  void set_handler(EndpointHandler* handler) override;
  void send(TrackId track, const GatherList& gl, std::uint64_t token) override;
  void progress() override {}  // events run from the shared Fabric loop
  std::string describe() const override;
  bool link_up() const override;

  /// Install a fault plan for THIS endpoint's transmit direction. A
  /// `fail_at` deadline schedules a whole-link failure on the fabric.
  /// Call before traffic starts; replaces any previous plan and reseeds.
  void set_fault_plan(const FaultPlan& plan);

  /// Hard-kill the link now (both directions): packets still on the wire
  /// are lost, future sends go nowhere, and both sides get on_link_down
  /// from the fabric loop.
  void fail_link();

  // Observability for tests/benches.
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t flatten_copies() const { return flatten_copies_; }
  /// Faults injected on this endpoint's TX direction.
  const FaultStats& fault_stats() const;

 private:
  struct LinkState;

  SimEndpoint(sim::Fabric& fabric, Capabilities caps,
              std::shared_ptr<LinkState> link, int side);

  sim::Fabric& fabric_;
  Capabilities caps_;
  std::shared_ptr<LinkState> link_;
  int side_;  // 0 or 1; peer is 1 - side_
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t flatten_copies_ = 0;
};

}  // namespace mado::drv
