// Shared-memory endpoint: intra-node transport between two threads of one
// process, exchanging frames through thread-safe queues — the SMP-node
// sibling of the network drivers (Madeleine was multi-protocol: cluster
// nodes talked Myrinet between boxes and shared memory within one).
//
// Unlike the socket driver there are no IO threads: send() enqueues the
// frame directly into the peer's inbox and the completion into the local
// outbox; both are delivered by the respective progress() calls, which
// keeps the driver contract (no synchronous callbacks) and makes the
// driver usable from both cooperative and threaded worlds.
#pragma once

#include <cstdint>
#include <memory>

#include "drivers/driver.hpp"
#include "util/queues.hpp"

namespace mado::drv {

/// Capability profile for the shared-memory transport: latency far below
/// any NIC, bandwidth at memcpy speed, no gather support (frames are
/// flattened into the queue anyway).
Capabilities shm_profile();

class ShmEndpoint final : public DriverEndpoint {
 public:
  struct PairResult {
    std::unique_ptr<ShmEndpoint> a;
    std::unique_ptr<ShmEndpoint> b;
  };
  static PairResult make_pair(const Capabilities& caps);
  static PairResult make_pair() { return make_pair(shm_profile()); }

  ~ShmEndpoint() override;

  const Capabilities& caps() const override { return caps_; }
  void set_handler(EndpointHandler* handler) override { handler_ = handler; }
  void send(TrackId track, const GatherList& gl, std::uint64_t token) override;
  void progress() override;

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  struct Frame {
    TrackId track = 0;
    Bytes payload;
  };
  struct Completion {
    TrackId track = 0;
    std::uint64_t token = 0;
  };
  struct Shared {
    MpscQueue<Frame> inbox[2];  // indexed by receiver side
  };

  ShmEndpoint(Capabilities caps, std::shared_ptr<Shared> shared, int side);

  Capabilities caps_;
  std::shared_ptr<Shared> shared_;
  int side_;
  EndpointHandler* handler_ = nullptr;
  MpscQueue<Completion> completions_;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace mado::drv
