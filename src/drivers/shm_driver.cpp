#include "drivers/shm_driver.hpp"

#include "util/assert.hpp"

namespace mado::drv {

Capabilities shm_profile() {
  Capabilities c;
  c.name = "shm";
  c.max_eager = 16 * 1024;
  c.rdv_threshold = 64 * 1024;
  c.gather_scatter = false;  // frames are contiguous copies
  c.max_gather_segments = 1;
  c.track_count = 2;
  c.cost.pio_overhead = 80;          // one queue handoff
  c.cost.dma_overhead = 80;
  c.cost.per_segment = 0;
  c.cost.pio_threshold = 256;
  c.cost.pio_bytes_per_us = 4000.0;  // memcpy-bound
  c.cost.link_bytes_per_us = 4000.0;
  c.cost.gap = 20;
  c.cost.latency = 200;              // ~0.2 us cross-thread
  c.cost.copy_bytes_per_us = 4000.0;
  return c;
}

ShmEndpoint::PairResult ShmEndpoint::make_pair(const Capabilities& caps) {
  auto shared = std::make_shared<Shared>();
  PairResult r;
  r.a.reset(new ShmEndpoint(caps, shared, 0));
  r.b.reset(new ShmEndpoint(caps, shared, 1));
  return r;
}

ShmEndpoint::ShmEndpoint(Capabilities caps, std::shared_ptr<Shared> shared,
                         int side)
    : caps_(std::move(caps)), shared_(std::move(shared)), side_(side) {}

ShmEndpoint::~ShmEndpoint() = default;

void ShmEndpoint::send(TrackId track, const GatherList& gl,
                       std::uint64_t token) {
  MADO_CHECK(track < caps_.track_count);
  Frame f;
  f.track = track;
  f.payload = gl.flatten();
  ++packets_sent_;
  bytes_sent_ += f.payload.size();
  shared_->inbox[1 - side_].push(std::move(f));
  completions_.push(Completion{track, token});
}

void ShmEndpoint::progress() {
  if (!handler_) return;
  while (auto c = completions_.try_pop())
    handler_->on_send_complete(c->track, c->token);
  while (auto f = shared_->inbox[side_].try_pop())
    handler_->on_packet(f->track, std::move(f->payload));
}

}  // namespace mado::drv
