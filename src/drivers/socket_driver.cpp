#include "drivers/socket_driver.hpp"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/wire.hpp"

namespace mado::drv {

namespace {
constexpr std::size_t kFrameHeaderLen = 1 + 4;  // track + payload length
constexpr std::size_t kMaxFrame = 256 * 1024 * 1024;
}  // namespace

SocketEndpoint::PairResult SocketEndpoint::make_pair(
    const Capabilities& caps_a, const Capabilities& caps_b) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw std::system_error(errno, std::generic_category(), "socketpair");
  PairResult r;
  r.a.reset(new SocketEndpoint(caps_a, fds[0]));
  r.b.reset(new SocketEndpoint(caps_b, fds[1]));
  return r;
}

SocketEndpoint::SocketEndpoint(Capabilities caps, int fd)
    : caps_(std::move(caps)), fd_(fd) {
  tx_thread_ = std::thread([this] { tx_loop(); });
  rx_thread_ = std::thread([this] { rx_loop(); });
}

SocketEndpoint::~SocketEndpoint() { close(); }

void SocketEndpoint::close() {
  if (!gate_.mark_closed_once()) return;
  stop_.store(true, std::memory_order_release);
  // The TX thread sleeps indefinitely in pop_blocking(); this sentinel is
  // its only wake-up, so shutdown is prompt and idle endpoints cost zero
  // wakeups in between.
  TxItem sentinel;
  sentinel.stop = true;
  tx_.push(std::move(sentinel));
  // Unblock the RX thread's read().
  ::shutdown(fd_, SHUT_RDWR);
  if (tx_thread_.joinable()) tx_thread_.join();
  if (rx_thread_.joinable()) rx_thread_.join();
  ::close(fd_);
  fd_ = -1;
}

void SocketEndpoint::send(TrackId track, const GatherList& gl,
                          std::uint64_t token) {
  MADO_CHECK(track < caps_.track_count);
  MADO_CHECK_MSG(!gate_.closed(), "send on closed endpoint");
  TxItem item;
  item.track = track;
  item.token = token;
  item.payload = gl.flatten();  // segments only live until completion
  gate_.accept();
  tx_.push(std::move(item));
}

void SocketEndpoint::progress() {
  if (!handler_) return;
  std::vector<Event> drained;
  events_.drain(drained);
  for (auto& ev : drained) {
    if (auto* done = std::get_if<EvSendComplete>(&ev)) {
      gate_.resolve();
      handler_->on_send_complete(done->track, done->token);
    } else if (auto* failed = std::get_if<EvSendFailed>(&ev)) {
      gate_.resolve();
      handler_->on_send_failed(failed->track, failed->token);
    } else {
      auto& pkt = std::get<EvPacket>(ev);
      handler_->on_packet(pkt.track, std::move(pkt.payload));
    }
  }
  // Teardown ordering: a peer death is reported only AFTER every packet
  // that made it over the wire has been handed to the handler and every
  // accepted send has been resolved (completion or failure), and exactly
  // once. The outstanding gate matters: when the wire breaks the TX
  // thread turns into a drain pump that fails queued items one by one —
  // without the gate a progress() call could slip in between two of those
  // pushes and report link-down while doomed sends still await their
  // on_send_failed. A deliberate local close() is not a failure and is
  // never reported. The full protocol lives in LinkDownGate (shared with
  // the UDP driver).
  if (gate_.should_report_link_down()) handler_->on_link_down();
}

bool SocketEndpoint::write_all(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (len > 0) {
    // MSG_NOSIGNAL: a peer that died mid-stream must surface as an error
    // (broken()), not as a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool SocketEndpoint::read_all(void* data, std::size_t len) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::read(fd_, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // peer closed
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

void SocketEndpoint::tx_loop() {
  // Blocking pop: the thread sleeps until a send arrives or close() pushes
  // the stop sentinel. The previous 100 ms pop_wait poll tick woke every
  // idle endpoint 10×/s forever and made shutdown wait out a partial tick;
  // now an idle endpoint parks at zero cost and the sentinel is the sole,
  // prompt wake-up. tx_wakeups_ counts every wake so a regression back to
  // polling is visible to the tests.
  for (;;) {
    TxItem item = tx_.pop_blocking();
    tx_wakeups_.fetch_add(1, std::memory_order_relaxed);
    if (item.stop) return;

    std::uint8_t hdr[kFrameHeaderLen];
    hdr[0] = item.track;
    const auto len = static_cast<std::uint32_t>(item.payload.size());
    hdr[1] = static_cast<std::uint8_t>(len & 0xff);
    hdr[2] = static_cast<std::uint8_t>((len >> 8) & 0xff);
    hdr[3] = static_cast<std::uint8_t>((len >> 16) & 0xff);
    hdr[4] = static_cast<std::uint8_t>((len >> 24) & 0xff);

    if (!write_all(hdr, sizeof hdr) ||
        !write_all(item.payload.data(), item.payload.size())) {
      // The wire broke under this item. Silently returning here used to
      // drop it AND everything still queued behind it — no completion, no
      // failure — so the engine's in-flight records for those tokens leaked
      // forever when reliability was off (and flush() hung on them). Fail
      // the current item, then stay alive as a drain pump so every queued
      // and every future send() gets exactly one failure event, delivered
      // by progress() before on_link_down.
      gate_.mark_broken();
      events_.push(EvSendFailed{item.track, item.token});
      for (;;) {
        TxItem doomed = tx_.pop_blocking();
        tx_wakeups_.fetch_add(1, std::memory_order_relaxed);
        if (doomed.stop) return;
        events_.push(EvSendFailed{doomed.track, doomed.token});
      }
    }
    packets_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(item.payload.size(), std::memory_order_relaxed);
    events_.push(EvSendComplete{item.track, item.token});
  }
}

void SocketEndpoint::rx_loop() {
  for (;;) {
    std::uint8_t hdr[kFrameHeaderLen];
    if (!read_all(hdr, sizeof hdr)) {
      if (!stop_.load(std::memory_order_acquire)) gate_.mark_broken();
      return;
    }
    const TrackId track = hdr[0];
    const std::uint32_t len = static_cast<std::uint32_t>(hdr[1]) |
                              (static_cast<std::uint32_t>(hdr[2]) << 8) |
                              (static_cast<std::uint32_t>(hdr[3]) << 16) |
                              (static_cast<std::uint32_t>(hdr[4]) << 24);
    if (len > kMaxFrame) {
      MADO_ERROR("socket rx: oversized frame " << len << " bytes, closing");
      gate_.mark_broken();
      return;
    }
    Bytes payload(len);
    if (len > 0 && !read_all(payload.data(), len)) {
      if (!stop_.load(std::memory_order_acquire)) gate_.mark_broken();
      return;
    }
    events_.push(EvPacket{track, std::move(payload)});
  }
}

}  // namespace mado::drv
