#include "drivers/profiles.hpp"

#include "drivers/shm_driver.hpp"
#include "drivers/udp_driver.hpp"
#include "util/assert.hpp"

namespace mado::drv {

Capabilities mx_myrinet_profile() {
  Capabilities c;
  c.name = "mx";
  c.max_eager = 8 * 1024;
  c.rdv_threshold = 32 * 1024;
  c.gather_scatter = true;
  c.max_gather_segments = 32;
  c.track_count = 2;
  c.cost.pio_overhead = 300;        // ~0.3 us small-send setup
  c.cost.dma_overhead = 1100;       // ~1.1 us DMA program cost
  c.cost.per_segment = 80;
  c.cost.pio_threshold = 128;
  c.cost.pio_bytes_per_us = 320.0;
  c.cost.link_bytes_per_us = 250.0; // Myrinet-2000: ~250 MB/s
  c.cost.gap = 120;
  c.cost.latency = 2900;            // ~2.9 us one-way
  c.cost.copy_bytes_per_us = 3000.0;
  return c;
}

Capabilities elan_quadrics_profile() {
  Capabilities c;
  c.name = "elan";
  c.max_eager = 16 * 1024;
  c.rdv_threshold = 64 * 1024;
  c.gather_scatter = true;
  c.max_gather_segments = 64;
  c.track_count = 2;
  c.cost.pio_overhead = 200;
  c.cost.dma_overhead = 900;
  c.cost.per_segment = 60;
  c.cost.pio_threshold = 256;       // Elan STEN units push small msgs fast
  c.cost.pio_bytes_per_us = 400.0;
  c.cost.link_bytes_per_us = 900.0; // QsNet II: ~900 MB/s
  c.cost.gap = 80;
  c.cost.latency = 1500;            // ~1.5 us one-way
  c.cost.copy_bytes_per_us = 3000.0;
  return c;
}

Capabilities tcp_gige_profile() {
  Capabilities c;
  c.name = "tcp";
  c.max_eager = 32 * 1024;
  c.rdv_threshold = 64 * 1024;
  c.gather_scatter = false;         // engine must flatten multi-segment packets
  c.max_gather_segments = 1;
  c.track_count = 2;
  c.cost.pio_overhead = 8000;       // kernel path: no cheap PIO mode
  c.cost.dma_overhead = 12000;
  c.cost.per_segment = 0;
  c.cost.pio_threshold = 0;         // everything takes the "DMA" path
  c.cost.pio_bytes_per_us = 110.0;
  c.cost.link_bytes_per_us = 110.0; // GigE effective ~110 MB/s
  c.cost.gap = 1000;
  c.cost.latency = 50000;           // ~50 us one-way
  c.cost.copy_bytes_per_us = 3000.0;
  return c;
}

Capabilities test_profile() {
  Capabilities c;
  c.name = "test";
  c.max_eager = 1024;
  c.rdv_threshold = 4096;
  c.gather_scatter = true;
  c.max_gather_segments = 16;
  c.track_count = 2;
  c.cost.pio_overhead = 10;
  c.cost.dma_overhead = 10;
  c.cost.per_segment = 1;
  c.cost.pio_threshold = 64;
  c.cost.pio_bytes_per_us = 1e6;
  c.cost.link_bytes_per_us = 1e6;
  c.cost.gap = 1;
  c.cost.latency = 10;
  c.cost.copy_bytes_per_us = 1e6;
  return c;
}

Capabilities profile_by_name(const std::string& name) {
  if (name == "mx") return mx_myrinet_profile();
  if (name == "elan") return elan_quadrics_profile();
  if (name == "tcp") return tcp_gige_profile();
  if (name == "shm") return shm_profile();
  if (name == "udp") return udp_loopback_profile();
  if (name == "test") return test_profile();
  MADO_CHECK_MSG(false, "unknown driver profile: " << name);
  __builtin_unreachable();
}

std::vector<std::string> profile_names() {
  return {"mx", "elan", "tcp", "shm", "udp", "test"};
}

}  // namespace mado::drv
