// Socket endpoint: real bytes over a Unix-domain socketpair, with one TX and
// one RX thread per endpoint. This is the "mock the NIC over sockets on one
// host" substrate: it exercises the engine against genuine asynchrony —
// partial reads/writes, thread handoff, out-of-band completion delivery —
// which the deterministic simulator cannot.
//
// Framing: [u8 track][u32 little-endian payload length][payload bytes].
// All tracks multiplex over the single stream, which preserves the per-track
// FIFO guarantee of the driver contract (a stream is FIFO for everything).
//
// Completions/arrivals are pushed onto an MPSC queue by the IO threads and
// handed to the handler from progress(), per the driver contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <variant>

#include "drivers/driver.hpp"
#include "drivers/link_gate.hpp"
#include "util/queues.hpp"

namespace mado::drv {

class SocketEndpoint final : public DriverEndpoint {
 public:
  struct PairResult {
    std::unique_ptr<SocketEndpoint> a;
    std::unique_ptr<SocketEndpoint> b;
  };
  /// Create both ends over a fresh socketpair. Throws std::system_error on
  /// OS failure.
  static PairResult make_pair(const Capabilities& caps_a,
                              const Capabilities& caps_b);
  static PairResult make_pair(const Capabilities& caps) {
    return make_pair(caps, caps);
  }

  ~SocketEndpoint() override;

  const Capabilities& caps() const override { return caps_; }
  void set_handler(EndpointHandler* handler) override { handler_ = handler; }
  void send(TrackId track, const GatherList& gl, std::uint64_t token) override;
  void progress() override;
  void close() override;
  bool link_up() const override { return !broken(); }

  /// True once the peer closed or an IO error occurred. progress() reports
  /// this to the handler as on_link_down — exactly once, after all queued
  /// arrivals have been drained.
  bool broken() const { return gate_.broken(); }

  std::uint64_t packets_sent() const {
    return packets_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  /// Times the TX thread woke from its blocking wait (one per queued item
  /// or stop sentinel — an idle endpoint holds this flat; the old 100 ms
  /// poll tick woke 10×/s doing nothing).
  std::uint64_t tx_wakeups() const {
    return tx_wakeups_.load(std::memory_order_relaxed);
  }

 private:
  SocketEndpoint(Capabilities caps, int fd);

  void tx_loop();
  void rx_loop();
  bool write_all(const void* data, std::size_t len);
  bool read_all(void* data, std::size_t len);

  struct TxItem {
    TrackId track = 0;
    std::uint64_t token = 0;
    Bytes payload;
    bool stop = false;
  };
  struct EvSendComplete {
    TrackId track;
    std::uint64_t token;
  };
  struct EvSendFailed {
    TrackId track;
    std::uint64_t token;
  };
  struct EvPacket {
    TrackId track;
    Bytes payload;
  };
  using Event = std::variant<EvSendComplete, EvSendFailed, EvPacket>;

  Capabilities caps_;
  int fd_ = -1;
  EndpointHandler* handler_ = nullptr;
  MpscQueue<TxItem> tx_;
  MpscQueue<Event> events_;
  std::thread tx_thread_;
  std::thread rx_thread_;
  std::atomic<bool> stop_{false};
  /// broken/outstanding/closed/reported protocol shared with the UDP
  /// driver; see link_gate.hpp for the exactly-once argument.
  LinkDownGate gate_;
  std::atomic<std::uint64_t> packets_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> tx_wakeups_{0};
};

}  // namespace mado::drv
