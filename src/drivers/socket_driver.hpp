// Socket endpoint: real bytes over a Unix-domain socketpair, with one TX and
// one RX thread per endpoint. This is the "mock the NIC over sockets on one
// host" substrate: it exercises the engine against genuine asynchrony —
// partial reads/writes, thread handoff, out-of-band completion delivery —
// which the deterministic simulator cannot.
//
// Framing: [u8 track][u32 little-endian payload length][payload bytes].
// All tracks multiplex over the single stream, which preserves the per-track
// FIFO guarantee of the driver contract (a stream is FIFO for everything).
//
// Completions/arrivals are pushed onto an MPSC queue by the IO threads and
// handed to the handler from progress(), per the driver contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <variant>

#include "drivers/driver.hpp"
#include "util/queues.hpp"

namespace mado::drv {

class SocketEndpoint final : public DriverEndpoint {
 public:
  struct PairResult {
    std::unique_ptr<SocketEndpoint> a;
    std::unique_ptr<SocketEndpoint> b;
  };
  /// Create both ends over a fresh socketpair. Throws std::system_error on
  /// OS failure.
  static PairResult make_pair(const Capabilities& caps_a,
                              const Capabilities& caps_b);
  static PairResult make_pair(const Capabilities& caps) {
    return make_pair(caps, caps);
  }

  ~SocketEndpoint() override;

  const Capabilities& caps() const override { return caps_; }
  void set_handler(EndpointHandler* handler) override { handler_ = handler; }
  void send(TrackId track, const GatherList& gl, std::uint64_t token) override;
  void progress() override;
  void close() override;
  bool link_up() const override { return !broken(); }

  /// True once the peer closed or an IO error occurred. progress() reports
  /// this to the handler as on_link_down — exactly once, after all queued
  /// arrivals have been drained.
  bool broken() const { return broken_.load(std::memory_order_acquire); }

  std::uint64_t packets_sent() const {
    return packets_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }

 private:
  SocketEndpoint(Capabilities caps, int fd);

  void tx_loop();
  void rx_loop();
  bool write_all(const void* data, std::size_t len);
  bool read_all(void* data, std::size_t len);

  struct TxItem {
    TrackId track = 0;
    std::uint64_t token = 0;
    Bytes payload;
    bool stop = false;
  };
  struct EvSendComplete {
    TrackId track;
    std::uint64_t token;
  };
  struct EvSendFailed {
    TrackId track;
    std::uint64_t token;
  };
  struct EvPacket {
    TrackId track;
    Bytes payload;
  };
  using Event = std::variant<EvSendComplete, EvSendFailed, EvPacket>;

  Capabilities caps_;
  int fd_ = -1;
  EndpointHandler* handler_ = nullptr;
  MpscQueue<TxItem> tx_;
  MpscQueue<Event> events_;
  std::thread tx_thread_;
  std::thread rx_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> broken_{false};
  /// sends accepted but not yet resolved to a completion/failure event that
  /// progress() has DELIVERED. Gates the link-down report: it must not fire
  /// while a doomed send still awaits its on_send_failed.
  std::atomic<std::uint64_t> outstanding_{0};
  std::atomic<bool> closed_{false};
  std::atomic<bool> link_down_reported_{false};
  std::atomic<std::uint64_t> packets_sent_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
};

}  // namespace mado::drv
