#include "drivers/udp_driver.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <system_error>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace mado::drv {

namespace {

constexpr std::size_t kHdrLen = 16;
constexpr std::size_t kMaxBatch = 32;
constexpr std::size_t kMaxFrame = 256 * 1024 * 1024;
/// IPv4 UDP payload ceiling (65535 - 20 IP - 8 UDP).
constexpr std::size_t kMaxDatagram = 65507;
/// Receive scratch slot; any legal datagram fits.
constexpr std::size_t kRxSlot = 65536;
/// Per-datagram flow-control surcharge: the kernel charges the receive
/// buffer by skb truesize, not payload bytes, so a window accounted in pure
/// wire bytes overruns rcvbuf for small datagrams. Both sides use the same
/// formula, so sender charges and receiver acks always agree.
constexpr std::uint64_t kChargeOverhead = 256;

constexpr std::uint8_t kTypeData = 1;
constexpr std::uint8_t kTypeAck = 2;
constexpr std::uint8_t kTypePing = 3;
constexpr std::uint8_t kTypePong = 4;

constexpr Nanos kFastTick = 1 * kNanosPerMilli;
constexpr Nanos kSlowTick = 50 * kNanosPerMilli;
/// Window-blocked this long → solicit an ack with a ping before escalating
/// to a full window reset.
constexpr Nanos kAckSolicitAfter = 2 * kNanosPerMilli;
/// A head-of-line frame that stopped receiving fragments for this long
/// while later frames wait behind it is presumed lost and dropped (the
/// reliability layer retransmits it as a fresh frame).
constexpr Nanos kReasmStall = 10 * kNanosPerMilli;

std::uint64_t charge(std::size_t wire_len) {
  return static_cast<std::uint64_t>(wire_len) + kChargeOverhead;
}

struct Header {
  std::uint8_t type = 0;
  std::uint8_t track = 0;
  std::uint16_t nfrags = 0;
  std::uint32_t seq = 0;
  std::uint32_t frag = 0;
  std::uint32_t frame_len = 0;
};

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xff);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xff);
  p[1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  p[2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  p[3] = static_cast<std::uint8_t>((v >> 24) & 0xff);
}
std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void encode_header(std::uint8_t* p, const Header& h) {
  p[0] = h.type;
  p[1] = h.track;
  put_u16(p + 2, h.nfrags);
  put_u32(p + 4, h.seq);
  put_u32(p + 8, h.frag);
  put_u32(p + 12, h.frame_len);
}

bool decode_header(const std::uint8_t* p, std::size_t len, Header& h) {
  if (len < kHdrLen) return false;
  h.type = p[0];
  h.track = p[1];
  h.nfrags = get_u16(p + 2);
  h.seq = get_u32(p + 4);
  h.frag = get_u32(p + 8);
  h.frame_len = get_u32(p + 12);
  return true;
}

/// Serial-number comparison (RFC 1982 style) so per-track frame sequence
/// numbers survive u32 wraparound.
bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}

Nanos now_ns() { return SteadyClock{}.now(); }

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Capabilities udp_loopback_profile() {
  Capabilities c;
  c.name = "udp";
  c.max_eager = 8 * 1024;
  c.rdv_threshold = 64 * 1024;
  c.gather_scatter = false;  // datagram build flattens multi-segment packets
  c.max_gather_segments = 1;
  c.track_count = 2;
  c.lossless = false;  // Engine::add_rail demands cfg.reliability
  c.datagram_mtu = UdpConfig{}.mtu;
  // Loopback through two event loops: syscall-dominated overheads, a few
  // GB/s of stream bandwidth, ~15 µs one-way through epoll + recvmmsg.
  c.cost.pio_overhead = 2000;
  c.cost.dma_overhead = 3000;
  c.cost.per_segment = 0;
  c.cost.pio_threshold = 0;  // every send takes the kernel path
  c.cost.pio_bytes_per_us = 3000.0;
  c.cost.link_bytes_per_us = 3000.0;
  c.cost.gap = 500;
  c.cost.latency = 15000;
  c.cost.copy_bytes_per_us = 3000.0;
  return c;
}

// ---------------------------------------------------------------------------
// UdpLoop
// ---------------------------------------------------------------------------

std::shared_ptr<UdpLoop> UdpLoop::create(const UdpConfig& cfg) {
  return std::shared_ptr<UdpLoop>(new UdpLoop(cfg));
}

UdpLoop::UdpLoop(const UdpConfig& cfg) : cfg_(cfg) {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) throw_errno("epoll_create1");
  wakefd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wakefd_ < 0) {
    ::close(epfd_);
    throw_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr marks the wake fd
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev) != 0) {
    ::close(wakefd_);
    ::close(epfd_);
    throw_errno("epoll_ctl wakefd");
  }
  rx_buf_.resize(kMaxBatch * kRxSlot);
  thread_ = std::thread([this] { run(); });
}

UdpLoop::~UdpLoop() {
  stop_.store(true, std::memory_order_release);
  wake();
  if (thread_.joinable()) thread_.join();
  ::close(wakefd_);
  ::close(epfd_);
}

void UdpLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wakefd_, &one, sizeof one);
}

void UdpLoop::notify_tx(UdpEndpoint* ep) {
  tx_dirty_.push(ep);
  wake();
}

void UdpLoop::register_endpoint(UdpEndpoint* ep) {
  bool done = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ctrl_.push_back(CtrlOp{false, ep, &done});
  }
  wake();
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return done; });
}

void UdpLoop::deregister_endpoint(UdpEndpoint* ep) {
  bool done = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ctrl_.push_back(CtrlOp{true, ep, &done});
  }
  wake();
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return done; });
}

void UdpLoop::process_ctrl() {
  std::vector<CtrlOp> ops;
  {
    std::lock_guard<std::mutex> lk(mu_);
    ops.swap(ctrl_);
  }
  if (ops.empty()) return;
  for (CtrlOp& op : ops) {
    UdpEndpoint* ep = op.ep;
    if (!op.deregister) {
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = ep;
      if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, ep->fd_, &ev) != 0)
        MADO_ERROR("udp: epoll ADD failed: " << std::strerror(errno));
      ep->io_.last_rx = now_ns();
      eps_.push_back(ep);
    } else {
      ::epoll_ctl(epfd_, EPOLL_CTL_DEL, ep->fd_, nullptr);
      eps_.erase(std::remove(eps_.begin(), eps_.end(), ep), eps_.end());
      active_tx_.erase(std::remove(active_tx_.begin(), active_tx_.end(), ep),
                       active_tx_.end());
      // Purge queued dirty notifications so the loop never dereferences the
      // endpoint after this handshake completes.
      std::vector<UdpEndpoint*> dirty;
      tx_dirty_.drain(dirty);
      for (UdpEndpoint* d : dirty)
        if (d != ep) tx_dirty_.push(d);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      *op.done = true;
    }
    cv_.notify_all();
  }
}

void UdpLoop::set_active(UdpEndpoint* ep, bool active) {
  if (active) {
    if (!ep->io_.in_active) {
      ep->io_.in_active = true;
      active_tx_.push_back(ep);
    }
  } else {
    ep->io_.in_active = false;
    active_tx_.erase(std::remove(active_tx_.begin(), active_tx_.end(), ep),
                     active_tx_.end());
  }
}

void UdpLoop::set_want_writable(UdpEndpoint* ep, bool want) {
  if (ep->io_.want_writable == want) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.ptr = ep;
  if (::epoll_ctl(epfd_, EPOLL_CTL_MOD, ep->fd_, &ev) != 0)
    MADO_ERROR("udp: epoll MOD failed: " << std::strerror(errno));
  ep->io_.want_writable = want;
}

void UdpLoop::run() {
  std::vector<epoll_event> evs(64);
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) break;
    // Idle loops sleep on epoll alone (forever with no endpoints, a slow
    // keepalive tick otherwise); a loop with backlogged senders polls at
    // the fast tick so window-blocked endpoints re-check promptly.
    const int timeout_ms =
        eps_.empty() ? -1 : (active_tx_.empty() ? 50 : 1);
    const int n =
        ::epoll_wait(epfd_, evs.data(), static_cast<int>(evs.size()),
                     timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      MADO_ERROR("udp: epoll_wait failed: " << std::strerror(errno));
      break;
    }
    for (std::size_t i = 0; i < static_cast<std::size_t>(n); ++i) {
      if (evs[i].data.ptr == nullptr) {
        std::uint64_t drain = 0;
        while (::read(wakefd_, &drain, sizeof drain) > 0) {
        }
        continue;
      }
      auto* ep = static_cast<UdpEndpoint*>(evs[i].data.ptr);
      if (evs[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP))
        handle_readable(ep);
      if (evs[i].events & EPOLLOUT) {
        set_want_writable(ep, false);
        set_active(ep, true);
      }
    }
    // Pick up endpoints whose submit queue gained items. The flag clears
    // BEFORE the pump drains, so a send() racing this point either lands in
    // the drain below or re-signals for the next iteration.
    {
      std::vector<UdpEndpoint*> dirty;
      tx_dirty_.drain(dirty);
      for (UdpEndpoint* ep : dirty) {
        ep->tx_signaled_.store(false, std::memory_order_release);
        set_active(ep, true);
      }
    }
    const Nanos now = now_ns();
    // Pump every active endpoint; keep only the ones with remaining
    // backlog (window- or EPOLLOUT-blocked, or mid-frame).
    std::size_t w = 0;
    for (std::size_t i = 0; i < active_tx_.size(); ++i) {
      UdpEndpoint* ep = active_tx_[i];
      pump_tx(ep, now);
      const bool keep = !ep->io_.q.empty() && !ep->io_.broken;
      ep->io_.in_active = keep;
      if (keep) active_tx_[w++] = ep;
    }
    active_tx_.resize(w);
    if (now - last_fast_tick_ >= kFastTick) {
      last_fast_tick_ = now;
      fast_tick(now);
    }
    if (now - last_slow_tick_ >= kSlowTick) {
      last_slow_tick_ = now;
      slow_tick(now);
    }
    process_ctrl();
  }
  // Drain any ctrl handshakes issued around shutdown so no caller blocks.
  process_ctrl();
}

void UdpLoop::handle_readable(UdpEndpoint* ep) {
  auto& io = ep->io_;
  mmsghdr msgs[kMaxBatch];
  iovec iovs[kMaxBatch];
  const std::size_t batch = std::min(ep->cfg_.batch, kMaxBatch);
  for (;;) {
    std::memset(msgs, 0, sizeof msgs);
    for (std::size_t i = 0; i < batch; ++i) {
      iovs[i].iov_base = rx_buf_.data() + i * kRxSlot;
      iovs[i].iov_len = kRxSlot;
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int n =
        ::recvmmsg(ep->fd_, msgs, static_cast<unsigned>(batch), 0, nullptr);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      // A connected UDP socket surfaces the peer's death (ICMP port
      // unreachable after a SIGKILL) as ECONNREFUSED right here.
      break_link(ep, std::strerror(errno));
      return;
    }
    if (n == 0) break;
    const Nanos now = now_ns();
    for (int i = 0; i < n; ++i) {
      if (io.broken) break;
      handle_datagram(ep, rx_buf_.data() + std::size_t(i) * kRxSlot,
                      msgs[i].msg_len, now);
    }
    if (io.broken) return;
    deliver_ready_frames(ep, now);
    flush_ack(ep, false);
    if (static_cast<std::size_t>(n) < batch) break;
  }
}

void UdpLoop::handle_datagram(UdpEndpoint* ep, const std::uint8_t* data,
                              std::size_t len, Nanos now) {
  auto& io = ep->io_;
  Header h;
  if (!decode_header(data, len, h)) return;  // runt: not ours, drop
  io.last_rx = now;
  ep->counters_.datagrams_rx.fetch_add(1, std::memory_order_relaxed);
  ep->counters_.bytes_rx.fetch_add(len, std::memory_order_relaxed);
  switch (h.type) {
    case kTypeAck: {
      ep->counters_.acks_rx.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t acked =
          static_cast<std::uint64_t>(h.seq) |
          (static_cast<std::uint64_t>(h.frag) << 32);
      if (acked > io.peer_acked) {
        io.peer_acked = acked;
        io.blocked_since = 0;
        if (!io.q.empty()) set_active(ep, true);
      }
      return;
    }
    case kTypePing:
      // A ping solicits an immediate ack (the sender is window-blocked)
      // and a pong for liveness.
      flush_ack(ep, true);
      send_ctrl_datagram(ep, kTypePong);
      return;
    case kTypePong:
      return;  // last_rx update above is the whole point
    case kTypeData:
      break;
    default:
      return;  // unknown type: drop
  }
  // Flow-control accounting covers every DATA datagram that reached the
  // socket — including ones the rx-loss hook then discards, so injected
  // loss starves the reliability layer, not the window.
  io.rx_charged += charge(len);
  const std::uint32_t loss_ppm =
      ep->rx_loss_ppm_.load(std::memory_order_relaxed);
  if (loss_ppm != 0) {
    std::uint64_t x = ep->loss_rng_.load(std::memory_order_relaxed);
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    ep->loss_rng_.store(x, std::memory_order_relaxed);
    if (x % 1000000u < loss_ppm) {
      ep->counters_.rx_loss_injected.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  const std::size_t plen = len - kHdrLen;
  if (h.track >= ep->caps_.track_count || h.nfrags == 0 ||
      h.frag >= h.nfrags || h.frame_len > kMaxFrame)
    return;  // malformed: drop
  // Fragment offset is derived from the observed payload size, so the two
  // sides need not agree on MTU: every non-final fragment of a frame
  // carries exactly the sender's chunk size.
  std::size_t off = 0;
  if (h.nfrags == 1) {
    if (plen != h.frame_len) return;
  } else if (h.frag + 1 == static_cast<std::uint32_t>(h.nfrags)) {
    if (plen > h.frame_len) return;
    off = h.frame_len - plen;
  } else {
    if (plen == 0) return;
    off = static_cast<std::size_t>(h.frag) * plen;
  }
  if (off + plen > h.frame_len) return;
  auto& tr = io.rx[h.track];
  if (seq_lt(h.seq, tr.next_seq)) {
    // A fragment of a frame already delivered or skipped past.
    ep->counters_.stale_frames.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  auto& r = tr.pend[h.seq];
  if (r.nfrags == 0) {
    r.nfrags = h.nfrags;
    r.buf = Bytes(h.frame_len);
    r.got.assign(h.nfrags, false);
    r.first_at = now;
  } else if (r.nfrags != h.nfrags || r.buf.size() != h.frame_len) {
    return;  // conflicting metadata for this seq: drop the datagram
  }
  r.complete_at = now;  // doubles as "last fragment activity" while partial
  if (r.got[h.frag]) return;  // duplicate fragment
  if (plen > 0) std::memcpy(r.buf.data() + off, data + kHdrLen, plen);
  r.got[h.frag] = true;
  if (++r.have == r.nfrags) r.complete = true;
  // Reassembly bound: drop the oldest incomplete frame when the pending
  // set overflows (completed frames drain via ordered release below).
  if (tr.pend.size() > ep->cfg_.max_pending_frames) {
    for (auto it = tr.pend.begin(); it != tr.pend.end(); ++it) {
      if (it->second.complete) continue;
      ep->counters_.reasm_drops.fetch_add(1, std::memory_order_relaxed);
      if (it->first == tr.next_seq) tr.next_seq = it->first + 1;
      tr.pend.erase(it);
      break;
    }
  }
}

void UdpLoop::deliver_ready_frames(UdpEndpoint* ep, Nanos now) {
  auto& io = ep->io_;
  for (std::size_t t = 0; t < io.rx.size(); ++t) {
    auto& tr = io.rx[t];
    while (!tr.pend.empty()) {
      auto it = tr.pend.begin();
      auto& r = it->second;
      if (it->first == tr.next_seq) {
        if (r.complete) {
          ep->events_.push(UdpEndpoint::EvPacket{
              static_cast<TrackId>(t), std::move(r.buf)});
          ep->counters_.frames_rx.fetch_add(1, std::memory_order_relaxed);
          tr.pend.erase(it);
          ++tr.next_seq;
          continue;
        }
        // Head-of-line frame still missing fragments. If its fragments
        // stopped arriving while later frames queue behind it, the rest of
        // it died on the wire: drop it so the track flows again (the
        // reliability layer retransmits the content as a fresh frame).
        if (tr.pend.size() > 1 && now - r.complete_at >= kReasmStall) {
          ep->counters_.reasm_drops.fetch_add(1, std::memory_order_relaxed);
          tr.pend.erase(it);
          ++tr.next_seq;
          continue;
        }
        break;
      }
      // Gap: the smallest pending seq is ahead of next_seq, so at least one
      // whole frame vanished. Release a completed frame past the gap after
      // a short hold (loopback reordering is rare; loss is the usual cause).
      if (r.complete && now - r.complete_at >= ep->cfg_.gap_skip_after) {
        ep->counters_.gap_skips.fetch_add(1, std::memory_order_relaxed);
        tr.next_seq = it->first;
        continue;
      }
      break;
    }
  }
}

void UdpLoop::pump_tx(UdpEndpoint* ep, Nanos now) {
  auto& io = ep->io_;
  {
    std::vector<UdpEndpoint::TxItem> fresh;
    ep->tx_.drain(fresh);
    for (auto& item : fresh) io.q.push_back(std::move(item));
  }
  if (ep->fail_requested_.exchange(false, std::memory_order_acq_rel)) {
    break_link(ep, "injected failure");
    return;
  }
  if (io.broken) {
    for (auto& item : io.q)
      ep->events_.push(UdpEndpoint::EvSendFailed{item.track, item.token});
    io.q.clear();
    io.cur_off = 0;
    return;
  }
  if (io.want_writable) return;  // waiting for EPOLLOUT
  const std::size_t batch = std::min(ep->cfg_.batch, kMaxBatch);
  while (!io.q.empty()) {
    mmsghdr msgs[kMaxBatch];
    iovec iovs[kMaxBatch][2];
    std::uint8_t hdrs[kMaxBatch][kHdrLen];
    struct Adv {
      std::size_t bytes = 0;
      std::uint64_t charge = 0;
      bool frame_done = false;
    } adv[kMaxBatch];
    std::memset(msgs, 0, sizeof msgs);
    unsigned built = 0;
    std::uint64_t pending_charge = 0;
    std::size_t qi = 0;
    std::size_t off = io.cur_off;
    while (built < batch && qi < io.q.size()) {
      auto& item = io.q[qi];
      if (!item.seq_assigned) {
        item.seq = io.next_seq[item.track]++;
        item.seq_assigned = true;
      }
      const std::size_t flen = item.payload.size();
      const std::size_t chunk = ep->chunk_;
      const auto nfrags = static_cast<std::uint32_t>(
          flen == 0 ? 1 : (flen + chunk - 1) / chunk);
      const std::size_t plen = flen == 0 ? 0 : std::min(chunk, flen - off);
      const auto frag =
          static_cast<std::uint32_t>(flen == 0 ? 0 : off / chunk);
      const std::uint64_t ch = charge(kHdrLen + plen);
      if (io.tx_charged + pending_charge + ch >
          io.peer_acked + ep->window_)
        break;  // window full
      Header h;
      h.type = kTypeData;
      h.track = item.track;
      h.nfrags = static_cast<std::uint16_t>(nfrags);
      h.seq = item.seq;
      h.frag = frag;
      h.frame_len = static_cast<std::uint32_t>(flen);
      encode_header(hdrs[built], h);
      iovs[built][0].iov_base = hdrs[built];
      iovs[built][0].iov_len = kHdrLen;
      msgs[built].msg_hdr.msg_iov = iovs[built];
      if (plen > 0) {
        iovs[built][1].iov_base = item.payload.data() + off;
        iovs[built][1].iov_len = plen;
        msgs[built].msg_hdr.msg_iovlen = 2;
      } else {
        msgs[built].msg_hdr.msg_iovlen = 1;
      }
      adv[built].bytes = plen;
      adv[built].charge = ch;
      adv[built].frame_done = off + plen >= flen;
      pending_charge += ch;
      ++built;
      off += plen;
      if (off >= flen) {
        ++qi;
        off = 0;
      }
    }
    if (built == 0) {
      // Window-blocked. Solicit an ack first; if the peer stays silent the
      // acks (or our data) died on the wire — reset the window and let the
      // reliability layer's retransmissions flow rather than deadlock.
      if (io.blocked_since == 0) {
        io.blocked_since = now;
        ep->counters_.window_stalls.fetch_add(1, std::memory_order_relaxed);
      } else if (now - io.blocked_since >= ep->cfg_.window_reset_after) {
        io.peer_acked = io.tx_charged;
        io.blocked_since = 0;
        ep->counters_.window_resets.fetch_add(1, std::memory_order_relaxed);
        continue;  // retry immediately with the fresh window
      } else if (now - io.blocked_since >= kAckSolicitAfter &&
                 now - io.last_ping >= kFastTick) {
        io.last_ping = now;
        send_ctrl_datagram(ep, kTypePing);
      }
      return;
    }
    int n;
    do {
      n = ::sendmmsg(ep->fd_, msgs, built, 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        ep->counters_.eagain_tx.fetch_add(1, std::memory_order_relaxed);
        set_want_writable(ep, true);
        return;
      }
      if (errno == ENOBUFS) {
        // Transient kernel memory pressure; EPOLLOUT won't signal relief,
        // so stay active and retry on the next loop iteration.
        ep->counters_.eagain_tx.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      break_link(ep, std::strerror(errno));
      return;
    }
    for (int i = 0; i < n; ++i) {
      io.tx_charged += adv[i].charge;
      ep->counters_.datagrams_tx.fetch_add(1, std::memory_order_relaxed);
      ep->counters_.bytes_tx.fetch_add(kHdrLen + adv[i].bytes,
                                       std::memory_order_relaxed);
      io.cur_off += adv[i].bytes;
      if (adv[i].frame_done) {
        auto& item = io.q.front();
        ep->events_.push(
            UdpEndpoint::EvSendComplete{item.track, item.token});
        ep->counters_.frames_tx.fetch_add(1, std::memory_order_relaxed);
        io.q.pop_front();
        io.cur_off = 0;
      }
    }
    io.blocked_since = 0;
    if (static_cast<unsigned>(n) < built) {
      ep->counters_.eagain_tx.fetch_add(1, std::memory_order_relaxed);
      set_want_writable(ep, true);
      return;
    }
  }
}

void UdpLoop::send_ctrl_datagram(UdpEndpoint* ep, std::uint8_t type) {
  std::uint8_t hdr[kHdrLen];
  Header h;
  h.type = type;
  encode_header(hdr, h);
  ssize_t n;
  do {
    n = ::send(ep->fd_, hdr, sizeof hdr, 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    if (errno == ECONNREFUSED) {
      break_link(ep, "econnrefused");
      return;
    }
    return;  // EAGAIN etc: keepalive is best-effort, the next tick retries
  }
  ep->counters_.datagrams_tx.fetch_add(1, std::memory_order_relaxed);
  ep->counters_.bytes_tx.fetch_add(sizeof hdr, std::memory_order_relaxed);
  if (type == kTypePing)
    ep->counters_.pings_tx.fetch_add(1, std::memory_order_relaxed);
}

void UdpLoop::flush_ack(UdpEndpoint* ep, bool force) {
  auto& io = ep->io_;
  const std::uint64_t delta = io.rx_charged - io.acked_sent;
  if (delta == 0) {
    io.ack_pending = false;
    return;
  }
  // Below the threshold the ack rides the next slow tick (or a ping): a
  // trickle flow never starves the sender's window, and a bulk flow crosses
  // the threshold every few datagrams anyway.
  if (!force && delta < ep->window_ / 8) {
    io.ack_pending = true;
    return;
  }
  std::uint8_t hdr[kHdrLen];
  Header h;
  h.type = kTypeAck;
  h.seq = static_cast<std::uint32_t>(io.rx_charged & 0xffffffffu);
  h.frag = static_cast<std::uint32_t>(io.rx_charged >> 32);
  encode_header(hdr, h);
  ssize_t n;
  do {
    n = ::send(ep->fd_, hdr, sizeof hdr, 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    if (errno == ECONNREFUSED) {
      break_link(ep, "econnrefused");
      return;
    }
    io.ack_pending = true;  // retried from the slow tick
    return;
  }
  ep->counters_.datagrams_tx.fetch_add(1, std::memory_order_relaxed);
  ep->counters_.bytes_tx.fetch_add(sizeof hdr, std::memory_order_relaxed);
  ep->counters_.acks_tx.fetch_add(1, std::memory_order_relaxed);
  io.acked_sent = io.rx_charged;
  io.ack_pending = false;
}

void UdpLoop::break_link(UdpEndpoint* ep, const char* why) {
  auto& io = ep->io_;
  if (io.broken) return;
  io.broken = true;
  ep->gate_.mark_broken();
  MADO_DEBUG("udp: link down (" << why << ") on port " << ep->local_port_);
  // Fail the partially-sent frame, everything queued behind it, and
  // everything still sitting in the submit queue — exactly one failure per
  // token, all delivered by progress() before on_link_down.
  {
    std::vector<UdpEndpoint::TxItem> fresh;
    ep->tx_.drain(fresh);
    for (auto& item : fresh) io.q.push_back(std::move(item));
  }
  for (auto& item : io.q)
    ep->events_.push(UdpEndpoint::EvSendFailed{item.track, item.token});
  io.q.clear();
  io.cur_off = 0;
  // Deliver whatever completed frames are releasable; incomplete ones died
  // with the link.
  deliver_ready_frames(ep, now_ns());
}

void UdpLoop::fast_tick(Nanos now) {
  // Ordered-release upkeep: gap skips and head-of-line stall drops must
  // advance even when no new datagram arrives to trigger the rx path.
  for (UdpEndpoint* ep : eps_) {
    if (ep->io_.broken) continue;
    bool any = false;
    for (auto& tr : ep->io_.rx)
      if (!tr.pend.empty()) any = true;
    if (any) deliver_ready_frames(ep, now);
  }
}

void UdpLoop::slow_tick(Nanos now) {
  for (UdpEndpoint* ep : eps_) {
    auto& io = ep->io_;
    if (io.broken) continue;
    if (ep->fail_requested_.exchange(false, std::memory_order_acq_rel)) {
      break_link(ep, "injected failure");
      continue;
    }
    if (io.ack_pending) flush_ack(ep, true);
    const Nanos silence = now - io.last_rx;
    if (silence >= ep->cfg_.peer_timeout) {
      break_link(ep, "peer timeout");
      continue;
    }
    if (silence >= ep->cfg_.ping_interval &&
        now - io.last_ping >= ep->cfg_.ping_interval) {
      io.last_ping = now;
      send_ctrl_datagram(ep, kTypePing);
    }
  }
}

// ---------------------------------------------------------------------------
// UdpEndpoint
// ---------------------------------------------------------------------------

UdpEndpoint::UdpEndpoint(std::shared_ptr<UdpLoop> loop, Capabilities caps,
                         UdpConfig cfg)
    : loop_(std::move(loop)), caps_(std::move(caps)), cfg_(cfg) {
  MADO_CHECK_MSG(cfg_.mtu > kHdrLen, "udp mtu must exceed the header");
  cfg_.mtu = std::min(cfg_.mtu, kMaxDatagram);
  cfg_.batch = std::max<std::size_t>(1, std::min(cfg_.batch, kMaxBatch));
  chunk_ = cfg_.mtu - kHdrLen;
  // Honest advertisement: the wire drops, and the driver flattens.
  caps_.lossless = false;
  caps_.datagram_mtu = cfg_.mtu;
  io_.next_seq.assign(caps_.track_count, 0);
  io_.rx.assign(caps_.track_count, TrackRx{});
}

UdpEndpoint::~UdpEndpoint() { close(); }

std::unique_ptr<UdpEndpoint> UdpEndpoint::bind(std::shared_ptr<UdpLoop> loop,
                                               const Capabilities& caps,
                                               const UdpConfig& cfg,
                                               std::uint16_t port) {
  MADO_CHECK_MSG(loop, "udp endpoint needs a loop");
  std::unique_ptr<UdpEndpoint> ep(
      new UdpEndpoint(std::move(loop), caps, cfg));
  ep->open_and_bind(port);
  return ep;
}

void UdpEndpoint::open_and_bind(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");
  const int buf = static_cast<int>(cfg_.sockbuf_bytes);
  // Best effort: the kernel clamps at rmem_max/wmem_max; the flow-control
  // window adapts to whatever was actually granted below.
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &buf, sizeof buf);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &buf, sizeof buf);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1)
    throw_errno("inet_pton");
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0)
    throw_errno("bind");
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &blen) != 0)
    throw_errno("getsockname");
  local_port_ = ntohs(bound.sin_port);
}

void UdpEndpoint::connect(const std::string& ip, std::uint16_t port) {
  MADO_CHECK_MSG(!connected_.load(std::memory_order_acquire),
                 "udp endpoint already connected");
  sockaddr_in peer{};
  peer.sin_family = AF_INET;
  peer.sin_port = htons(port);
  if (::inet_pton(AF_INET, ip.c_str(), &peer.sin_addr) != 1)
    throw_errno("inet_pton");
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&peer),
                sizeof peer) != 0)
    throw_errno("connect");
  // The window may never exceed what the peer's receive buffer can hold;
  // with symmetric configs our own granted rcvbuf is the honest proxy.
  // Floor at one full datagram so a tiny buffer still makes progress.
  int rcv = 0;
  socklen_t rlen = sizeof rcv;
  ::getsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcv, &rlen);
  window_ = cfg_.window_bytes;
  if (rcv > 0)
    window_ = std::min(window_, static_cast<std::size_t>(rcv) / 2);
  window_ = std::max(window_,
                     static_cast<std::size_t>(charge(kHdrLen + chunk_)));
  connected_.store(true, std::memory_order_release);
  loop_->register_endpoint(this);
  registered_.store(true, std::memory_order_release);
}

UdpEndpoint::PairResult UdpEndpoint::make_pair(const Capabilities& caps_a,
                                               const Capabilities& caps_b,
                                               const UdpConfig& cfg) {
  auto loop = UdpLoop::create(cfg);
  PairResult r;
  r.a = bind(loop, caps_a, cfg);
  r.b = bind(loop, caps_b, cfg);
  r.a->connect("127.0.0.1", r.b->local_port());
  r.b->connect("127.0.0.1", r.a->local_port());
  return r;
}

void UdpEndpoint::send(TrackId track, const GatherList& gl,
                       std::uint64_t token) {
  MADO_CHECK(track < caps_.track_count);
  MADO_CHECK_MSG(!gate_.closed(), "send on closed endpoint");
  MADO_CHECK_MSG(connected_.load(std::memory_order_acquire),
                 "send before connect");
  TxItem item;
  item.track = track;
  item.token = token;
  item.payload = gl.flatten();  // segments only live until completion
  MADO_CHECK_MSG(item.payload.size() <= kMaxFrame, "oversized frame");
  MADO_CHECK_MSG((item.payload.size() + chunk_ - 1) / chunk_ <= 0xffff,
                 "frame needs more than 65535 fragments at this MTU");
  gate_.accept();
  tx_.push(std::move(item));
  // One wake per burst: the loop clears the flag before draining, so the
  // first send after a drain re-arms the notification.
  if (!tx_signaled_.exchange(true, std::memory_order_acq_rel))
    loop_->notify_tx(this);
}

void UdpEndpoint::progress() {
  if (!handler_) return;
  std::vector<Event> drained;
  events_.drain(drained);
  for (auto& ev : drained) {
    if (auto* done = std::get_if<EvSendComplete>(&ev)) {
      gate_.resolve();
      handler_->on_send_complete(done->track, done->token);
    } else if (auto* failed = std::get_if<EvSendFailed>(&ev)) {
      gate_.resolve();
      handler_->on_send_failed(failed->track, failed->token);
    } else {
      auto& pkt = std::get<EvPacket>(ev);
      handler_->on_packet(pkt.track, std::move(pkt.payload));
    }
  }
  if (gate_.should_report_link_down()) handler_->on_link_down();
}

void UdpEndpoint::close() {
  if (!gate_.mark_closed_once()) return;
  // Synchronous handshake: after this returns the loop thread holds no
  // reference to this endpoint, so the fd and Io state are ours to tear
  // down.
  if (registered_.load(std::memory_order_acquire))
    loop_->deregister_endpoint(this);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void UdpEndpoint::inject_failure() {
  fail_requested_.store(true, std::memory_order_release);
  // Ride the tx-dirty path so the loop notices promptly even when idle.
  if (registered_.load(std::memory_order_acquire)) {
    if (!tx_signaled_.exchange(true, std::memory_order_acq_rel))
      loop_->notify_tx(this);
  }
}

void UdpEndpoint::set_rx_loss(double probability, std::uint64_t seed) {
  loss_rng_.store(seed | 1, std::memory_order_relaxed);
  const double p = std::min(1.0, std::max(0.0, probability));
  rx_loss_ppm_.store(static_cast<std::uint32_t>(p * 1000000.0),
                     std::memory_order_release);
}

std::string UdpEndpoint::describe() const {
  return "udp:127.0.0.1:" + std::to_string(local_port_);
}

}  // namespace mado::drv
