// Abstract transfer-layer endpoint (one side of a point-to-point link).
//
// Driver contract (every implementation MUST follow it; the engine's
// locking depends on it):
//
//  1. send() never invokes handler callbacks synchronously. Completions and
//     arrivals are delivered later — from Fabric::step() for the simulated
//     driver, from progress() for thread-backed drivers.
//  2. Handler callbacks are invoked WITHOUT any engine lock held; the
//     engine re-acquires its own lock inside the callback.
//  3. Per track, completions are reported in send order, and packets are
//     delivered to the peer in send order (tracks are FIFO channels).
//     No ordering holds ACROSS tracks.
//  4. The GatherList segments passed to send() remain valid until the
//     matching on_send_complete fires.
#pragma once

#include <cstdint>
#include <string>

#include "drivers/capabilities.hpp"
#include "util/iovec.hpp"
#include "util/wire.hpp"

namespace mado::drv {

class EndpointHandler {
 public:
  virtual ~EndpointHandler() = default;

  /// The packet identified by `token` left the NIC; the track slot is free.
  virtual void on_send_complete(TrackId track, std::uint64_t token) = 0;

  /// A packet arrived from the peer on `track`. Payload ownership moves to
  /// the handler.
  virtual void on_packet(TrackId track, Bytes payload) = 0;

  /// A queued send will never complete: the wire broke while (or before)
  /// the driver was transmitting it. Fired exactly once per affected token
  /// — every send() gets exactly one of on_send_complete / on_send_failed —
  /// and before the endpoint's on_link_down. Default: ignore (the link-down
  /// failover then sweeps up the in-flight record; lossless drivers never
  /// call it).
  virtual void on_send_failed(TrackId track, std::uint64_t token) {
    (void)track;
    (void)token;
  }

  /// The link died (peer closed, transport error, injected failure). Fired
  /// at most once per endpoint, after every packet that arrived before the
  /// failure has been delivered via on_packet and every doomed send has
  /// been failed via on_send_failed. Default: ignore (lossless drivers
  /// never call it).
  virtual void on_link_down() {}
};

class DriverEndpoint {
 public:
  virtual ~DriverEndpoint() = default;

  DriverEndpoint(const DriverEndpoint&) = delete;
  DriverEndpoint& operator=(const DriverEndpoint&) = delete;

  virtual const Capabilities& caps() const = 0;

  /// Register the engine-side handler. Must be called before first send.
  virtual void set_handler(EndpointHandler* handler) = 0;

  /// Enqueue one packet on `track`. See the contract above.
  virtual void send(TrackId track, const GatherList& gl,
                    std::uint64_t token) = 0;

  /// Drain pending completions/arrivals (no-op for the simulated driver,
  /// whose events run from the shared Fabric loop).
  virtual void progress() = 0;

  /// Stop background threads, if any. Idempotent.
  virtual void close() {}

  /// False once the link has failed (on_link_down fired or is pending).
  virtual bool link_up() const { return true; }

  virtual std::string describe() const { return caps().name; }

 protected:
  DriverEndpoint() = default;
};

}  // namespace mado::drv
