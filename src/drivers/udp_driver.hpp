// UDP endpoint: real datagrams over the kernel UDP stack, multiplexing any
// number of peers on ONE epoll event loop per process with batched
// sendmmsg/recvmmsg. This is the bridge from "socketpair inside one process"
// to "serves actual traffic": peers live in separate OS processes, the wire
// can drop and reorder, and SIGKILLing a peer surfaces as a real transport
// error (ICMP port-unreachable → ECONNREFUSED on the connected socket).
//
// Datagram format (16-byte header, little-endian, then payload):
//
//   [u8 type][u8 track][u16 nfrags][u32 seq][u32 frag][u32 frame_len]
//
//   type: 1=Data  2=Ack  3=Ping  4=Pong
//
// A driver frame (one send()) larger than the MTU payload is fragmented
// into `nfrags` datagrams sharing one per-track `seq`; the receiver
// reassembles by (track, seq, frag) and hands completed frames up in seq
// order. Acks carry a cumulative received-byte count (lo32 in `seq`, hi32
// in `frag`) driving the sender's flow-control window — without it, bulk
// senders overrun the loopback receive buffer (~208 KiB default) and drop
// silently even on a "clean" link. Ping/Pong are keepalive + ack
// solicitation.
//
// The driver is honest about what UDP is: caps().lossless == false, so
// Engine::add_rail refuses the rail unless cfg.reliability (the go-back-N
// layer from PR 2) is on. Delivery is per-track FIFO for the frames that DO
// arrive (seq-ordered release with a bounded skip for lost frames);
// recovering the lost ones is the reliability layer's job.
//
// Threading: one UdpLoop thread owns epoll, all sockets, and all per-
// endpoint IO state. send() only enqueues + wakes the loop; progress()
// only drains the completion queue — the same MPSC handoff as the
// socketpair driver, so the engine-facing contract is identical.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "drivers/driver.hpp"
#include "drivers/link_gate.hpp"
#include "util/clock.hpp"
#include "util/queues.hpp"

namespace mado::drv {

class UdpEndpoint;

struct UdpConfig {
  /// Largest datagram emitted (header + payload). Bounded by the IPv4 UDP
  /// maximum (65507); the default balances syscalls-per-byte against
  /// pipelining inside the flow-control window.
  std::size_t mtu = 32 * 1024;
  /// Flow-control window in charged bytes (wire bytes + a per-datagram
  /// allowance for kernel skb overhead). Clamped at connect() time to half
  /// the socket's actual receive buffer, so the window can never overrun
  /// a default-sized rcvbuf.
  std::size_t window_bytes = 256 * 1024;
  /// Requested SO_RCVBUF/SO_SNDBUF (the kernel caps by rmem_max/wmem_max).
  std::size_t sockbuf_bytes = 1 * 1024 * 1024;
  /// Datagrams per sendmmsg/recvmmsg call (capped at kMaxBatch).
  std::size_t batch = 32;
  /// Send a keepalive ping after this much rx silence.
  Nanos ping_interval = 200 * 1000 * 1000;      // 200 ms
  /// Declare the peer dead after this much rx silence (backstop for the
  /// ECONNREFUSED fast path, which needs the peer's port to be closed).
  Nanos peer_timeout = 2ull * 1000 * 1000 * 1000;  // 2 s
  /// Window-blocked with no ack progress for this long → assume the acks
  /// (or the data) died on the wire and reset the window so the engine's
  /// retransmission can flow. Counted in udp.window_resets.
  Nanos window_reset_after = 20 * 1000 * 1000;  // 20 ms
  /// A completed frame stuck behind a lost lower-seq frame is released
  /// after this long (counts udp.gap_skips); driver FIFO covers delivered
  /// frames, the reliability layer recovers the gap.
  Nanos gap_skip_after = 2 * 1000 * 1000;  // 2 ms
  /// Reassembly bound per (endpoint, track): beyond this many pending
  /// frames the oldest incomplete one is dropped (udp.reasm_drops).
  std::size_t max_pending_frames = 64;
};

/// Monotonic driver counters, written by the loop thread, readable from any
/// thread (relaxed). The `udp.*` names in docs/counters.md map 1:1.
struct UdpCounters {
  std::atomic<std::uint64_t> datagrams_tx{0};
  std::atomic<std::uint64_t> datagrams_rx{0};
  std::atomic<std::uint64_t> bytes_tx{0};
  std::atomic<std::uint64_t> bytes_rx{0};
  std::atomic<std::uint64_t> frames_tx{0};
  std::atomic<std::uint64_t> frames_rx{0};
  std::atomic<std::uint64_t> acks_tx{0};
  std::atomic<std::uint64_t> acks_rx{0};
  std::atomic<std::uint64_t> pings_tx{0};
  std::atomic<std::uint64_t> eagain_tx{0};
  std::atomic<std::uint64_t> window_stalls{0};
  std::atomic<std::uint64_t> window_resets{0};
  std::atomic<std::uint64_t> gap_skips{0};
  std::atomic<std::uint64_t> reasm_drops{0};
  std::atomic<std::uint64_t> stale_frames{0};
  std::atomic<std::uint64_t> rx_loss_injected{0};
  std::atomic<std::uint64_t> loop_wakeups{0};
};

/// Honest capability profile for UDP over loopback: no gather (datagram
/// build flattens), lossless=false (reliability required), loopback-class
/// cost numbers so RTO floors and stripe planning stay sane.
Capabilities udp_loopback_profile();

/// One epoll event loop serving every UdpEndpoint of a process. Create it
/// once (UdpLoop::create), hand the shared_ptr to each endpoint; the loop
/// thread exits when the last endpoint releases it.
class UdpLoop {
 public:
  static std::shared_ptr<UdpLoop> create(const UdpConfig& cfg = {});
  ~UdpLoop();

  UdpLoop(const UdpLoop&) = delete;
  UdpLoop& operator=(const UdpLoop&) = delete;

 private:
  friend class UdpEndpoint;
  explicit UdpLoop(const UdpConfig& cfg);

  /// Both are synchronous handshakes with the loop thread: after
  /// deregister() returns, the loop holds no reference to the endpoint.
  void register_endpoint(UdpEndpoint* ep);
  void deregister_endpoint(UdpEndpoint* ep);
  /// Cross-thread nudge (eventfd write).
  void wake();
  /// send() fast path: mark `ep` tx-dirty and wake the loop only on the
  /// first send of a burst.
  void notify_tx(UdpEndpoint* ep);

  void run();
  void process_ctrl();
  void handle_readable(UdpEndpoint* ep);
  void handle_datagram(UdpEndpoint* ep, const std::uint8_t* data,
                       std::size_t len, Nanos now);
  void deliver_ready_frames(UdpEndpoint* ep, Nanos now);
  void pump_tx(UdpEndpoint* ep, Nanos now);
  void send_ctrl_datagram(UdpEndpoint* ep, std::uint8_t type);
  void flush_ack(UdpEndpoint* ep, bool force);
  void break_link(UdpEndpoint* ep, const char* why);
  void set_active(UdpEndpoint* ep, bool active);
  void set_want_writable(UdpEndpoint* ep, bool want);
  void fast_tick(Nanos now);
  void slow_tick(Nanos now);

  UdpConfig cfg_;
  int epfd_ = -1;
  int wakefd_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};

  std::mutex mu_;
  std::condition_variable cv_;
  struct CtrlOp {
    bool deregister = false;
    UdpEndpoint* ep = nullptr;
    bool* done = nullptr;
  };
  std::vector<CtrlOp> ctrl_;

  /// Endpoints whose submit queue gained items since the loop last drained
  /// them (MPSC so every submitter can push; loop is the one consumer).
  MpscQueue<UdpEndpoint*> tx_dirty_;

  // Loop-thread-only state below.
  std::vector<UdpEndpoint*> eps_;
  std::vector<UdpEndpoint*> active_tx_;
  std::vector<std::uint8_t> rx_buf_;  ///< batch × mtu receive scratch
  Nanos last_fast_tick_ = 0;
  Nanos last_slow_tick_ = 0;
};

class UdpEndpoint final : public DriverEndpoint {
 public:
  struct PairResult {
    std::unique_ptr<UdpEndpoint> a;
    std::unique_ptr<UdpEndpoint> b;
  };
  /// Both ends in one process, cross-connected over 127.0.0.1 on a shared
  /// loop — the drop-in analogue of SocketEndpoint::make_pair for tests.
  static PairResult make_pair(const Capabilities& caps_a,
                              const Capabilities& caps_b,
                              const UdpConfig& cfg = {});
  static PairResult make_pair(const Capabilities& caps,
                              const UdpConfig& cfg = {}) {
    return make_pair(caps, caps, cfg);
  }

  /// Multi-process path: bind an unconnected endpoint on 127.0.0.1 (port 0
  /// = ephemeral), exchange ports out of band, then connect(). Traffic and
  /// epoll registration start at connect().
  static std::unique_ptr<UdpEndpoint> bind(std::shared_ptr<UdpLoop> loop,
                                           const Capabilities& caps,
                                           const UdpConfig& cfg = {},
                                           std::uint16_t port = 0);
  std::uint16_t local_port() const { return local_port_; }
  void connect(const std::string& ip, std::uint16_t port);

  ~UdpEndpoint() override;

  const Capabilities& caps() const override { return caps_; }
  void set_handler(EndpointHandler* handler) override { handler_ = handler; }
  void send(TrackId track, const GatherList& gl, std::uint64_t token) override;
  void progress() override;
  void close() override;
  bool link_up() const override { return !gate_.broken(); }
  std::string describe() const override;

  bool broken() const { return gate_.broken(); }
  const UdpCounters& counters() const { return counters_; }

  /// Test hook: sever the link as if the wire died (queued and future sends
  /// fail, then exactly one on_link_down).
  void inject_failure();
  /// Test hook: drop this fraction of received DATA datagrams (after flow-
  /// control accounting, before reassembly) — a lossy wire whose acks still
  /// flow, so the window stays live while the reliability layer sweats.
  void set_rx_loss(double probability, std::uint64_t seed);

 private:
  friend class UdpLoop;
  UdpEndpoint(std::shared_ptr<UdpLoop> loop, Capabilities caps,
              UdpConfig cfg);

  void open_and_bind(std::uint16_t port);
  void register_with_loop();

  struct TxItem {
    TrackId track = 0;
    std::uint64_t token = 0;
    Bytes payload;
    bool seq_assigned = false;
    std::uint32_t seq = 0;
  };
  struct EvSendComplete {
    TrackId track;
    std::uint64_t token;
  };
  struct EvSendFailed {
    TrackId track;
    std::uint64_t token;
  };
  struct EvPacket {
    TrackId track;
    Bytes payload;
  };
  using Event = std::variant<EvSendComplete, EvSendFailed, EvPacket>;

  /// One partially reassembled (or completed, awaiting ordered release)
  /// inbound frame.
  struct Reasm {
    Bytes buf;
    std::vector<bool> got;
    std::uint32_t have = 0;
    std::uint32_t nfrags = 0;
    bool complete = false;
    Nanos first_at = 0;
    Nanos complete_at = 0;
  };
  struct TrackRx {
    std::uint32_t next_seq = 0;  ///< next seq to release to the handler
    std::map<std::uint32_t, Reasm> pend;
  };

  /// Loop-thread-only IO state. Registration/deregistration handshakes
  /// (mutex + cv) order every access against construction and close().
  struct Io {
    std::deque<TxItem> q;
    std::size_t cur_off = 0;  ///< payload bytes of q.front() already sent
    std::vector<std::uint32_t> next_seq;  ///< per-track tx frame seq
    std::uint64_t tx_charged = 0;
    std::uint64_t peer_acked = 0;
    bool want_writable = false;
    bool in_active = false;
    Nanos blocked_since = 0;  ///< 0 = not window-blocked
    std::uint64_t rx_charged = 0;
    std::uint64_t acked_sent = 0;  ///< last cumulative value sent to peer
    bool ack_pending = false;
    std::vector<TrackRx> rx;
    Nanos last_rx = 0;
    Nanos last_ping = 0;
    bool broken = false;  ///< loop-side latch: fail everything from now on
  };

  std::shared_ptr<UdpLoop> loop_;
  Capabilities caps_;
  UdpConfig cfg_;
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::size_t chunk_ = 0;         ///< payload bytes per datagram
  std::size_t window_ = 0;        ///< effective window (rcvbuf-clamped)
  std::atomic<bool> connected_{false};
  std::atomic<bool> registered_{false};
  EndpointHandler* handler_ = nullptr;

  MpscQueue<TxItem> tx_;
  MpscQueue<Event> events_;
  std::atomic<bool> tx_signaled_{false};
  LinkDownGate gate_;
  std::atomic<bool> fail_requested_{false};
  std::atomic<std::uint32_t> rx_loss_ppm_{0};
  /// xorshift state; atomic only so seeding from a test thread is race-free
  /// against the loop thread's relaxed advance.
  std::atomic<std::uint64_t> loss_rng_{0};
  UdpCounters counters_;
  Io io_;
};

}  // namespace mado::drv
