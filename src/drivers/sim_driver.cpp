#include "drivers/sim_driver.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace mado::drv {

/// Shared state of one full-duplex link. Direction d (0→1 or 1→0) has its
/// own serialization horizon `link_free[d]`. Handlers live here (not in the
/// endpoints) so in-flight delivery events can check liveness safely.
struct SimEndpoint::LinkState {
  sim::Fabric* fabric = nullptr;
  EndpointHandler* handler[2] = {nullptr, nullptr};
  bool alive[2] = {false, false};
  Nanos link_free[2] = {0, 0};
};

SimEndpoint::PairResult SimEndpoint::make_pair(sim::Fabric& fabric,
                                               const Capabilities& caps_a,
                                               const Capabilities& caps_b) {
  auto link = std::make_shared<LinkState>();
  link->fabric = &fabric;
  link->alive[0] = link->alive[1] = true;
  PairResult r;
  r.a.reset(new SimEndpoint(fabric, caps_a, link, 0));
  r.b.reset(new SimEndpoint(fabric, caps_b, link, 1));
  return r;
}

SimEndpoint::SimEndpoint(sim::Fabric& fabric, Capabilities caps,
                         std::shared_ptr<LinkState> link, int side)
    : fabric_(fabric), caps_(std::move(caps)), link_(std::move(link)),
      side_(side) {}

SimEndpoint::~SimEndpoint() {
  link_->alive[side_] = false;
  link_->handler[side_] = nullptr;
}

void SimEndpoint::set_handler(EndpointHandler* handler) {
  link_->handler[side_] = handler;
}

void SimEndpoint::send(TrackId track, const GatherList& gl,
                       std::uint64_t token) {
  MADO_CHECK_MSG(track < caps_.track_count,
                 "track " << int(track) << " out of range for " << caps_.name);
  MADO_CHECK(link_->handler[side_] != nullptr);

  // Materialize the payload now: segment buffers are only guaranteed valid
  // until on_send_complete, and delivery happens after that.
  Bytes payload = gl.flatten();
  const std::size_t bytes = payload.size();

  // Charge segment handling per the capabilities: a gather-capable NIC pays
  // per-segment overhead; otherwise the host flattens first (memcpy cost).
  const sim::NicModel model(caps_.cost);
  std::size_t nsegs = gl.segment_count();
  Nanos flatten_cost = 0;
  const bool needs_flatten =
      nsegs > 1 &&
      (!caps_.gather_scatter || nsegs > caps_.max_gather_segments);
  if (needs_flatten) {
    flatten_cost = model.copy_time(bytes);
    nsegs = 1;
    ++flatten_copies_;
  }

  const Nanos busy = flatten_cost + model.busy_time(bytes, nsegs);
  const int d = side_;  // direction side_ -> peer
  const Nanos start = std::max(fabric_.now(), link_->link_free[d]);
  const Nanos accept = start + busy;
  link_->link_free[d] = accept;
  const Nanos deliver = accept + model.propagation_latency();

  ++packets_sent_;
  bytes_sent_ += bytes;
  MADO_TRACE("sim[" << caps_.name << "/" << d << "] send track="
                    << int(track) << " bytes=" << bytes << " segs=" << nsegs
                    << " accept@" << accept << " deliver@" << deliver);

  auto link = link_;
  const int me = side_;
  fabric_.post_at(accept, [link, me, track, token] {
    if (link->alive[me] && link->handler[me])
      link->handler[me]->on_send_complete(track, token);
  });
  const int peer = 1 - side_;
  fabric_.post_at(deliver,
                  [link, peer, track, p = std::move(payload)]() mutable {
                    if (link->alive[peer] && link->handler[peer])
                      link->handler[peer]->on_packet(track, std::move(p));
                  });
}

std::string SimEndpoint::describe() const {
  std::ostringstream os;
  os << "sim:" << caps_.name << "[side " << side_ << "]";
  return os.str();
}

}  // namespace mado::drv
