#include "drivers/sim_driver.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace mado::drv {

/// Shared state of one full-duplex link. Direction d (0→1 or 1→0) has its
/// own serialization horizon `link_free[d]`, fault plan and fault RNG
/// stream. Handlers live here (not in the endpoints) so in-flight delivery
/// events can check liveness safely.
struct SimEndpoint::LinkState {
  sim::Fabric* fabric = nullptr;
  EndpointHandler* handler[2] = {nullptr, nullptr};
  bool alive[2] = {false, false};
  Nanos link_free[2] = {0, 0};
  // Fault injection, per TX direction.
  FaultPlan plan[2];
  Rng rng[2];
  FaultStats faults[2];
  bool failed = false;          ///< whole link is dead
  bool down_notified = false;   ///< on_link_down already dispatched

  /// Kill the link and notify both live sides exactly once. Runs from the
  /// fabric loop (driver contract: no synchronous handler calls).
  static void fail_now(const std::shared_ptr<LinkState>& link) {
    link->failed = true;
    if (link->down_notified) return;
    link->down_notified = true;
    for (int s = 0; s < 2; ++s)
      if (link->alive[s] && link->handler[s]) link->handler[s]->on_link_down();
  }
};

SimEndpoint::PairResult SimEndpoint::make_pair(sim::Fabric& fabric,
                                               const Capabilities& caps_a,
                                               const Capabilities& caps_b) {
  auto link = std::make_shared<LinkState>();
  link->fabric = &fabric;
  link->alive[0] = link->alive[1] = true;
  PairResult r;
  r.a.reset(new SimEndpoint(fabric, caps_a, link, 0));
  r.b.reset(new SimEndpoint(fabric, caps_b, link, 1));
  return r;
}

SimEndpoint::SimEndpoint(sim::Fabric& fabric, Capabilities caps,
                         std::shared_ptr<LinkState> link, int side)
    : fabric_(fabric), caps_(std::move(caps)), link_(std::move(link)),
      side_(side) {}

SimEndpoint::~SimEndpoint() {
  link_->alive[side_] = false;
  link_->handler[side_] = nullptr;
}

void SimEndpoint::set_handler(EndpointHandler* handler) {
  link_->handler[side_] = handler;
}

bool SimEndpoint::link_up() const { return !link_->failed; }

const FaultStats& SimEndpoint::fault_stats() const {
  return link_->faults[side_];
}

void SimEndpoint::set_fault_plan(const FaultPlan& plan) {
  link_->plan[side_] = plan;
  link_->rng[side_] = Rng(plan.seed + static_cast<std::uint64_t>(side_));
  if (plan.fail_at > 0) {
    auto link = link_;
    fabric_.post_at(plan.fail_at, [link] {
      if (!link->failed) LinkState::fail_now(link);
    });
  }
}

void SimEndpoint::fail_link() {
  if (link_->failed) return;
  // Mark dead immediately (sends stop; in-flight deliveries are lost), but
  // dispatch the notification from the fabric loop per the driver contract.
  link_->failed = true;
  auto link = link_;
  fabric_.post_at(fabric_.now(), [link] { LinkState::fail_now(link); });
}

void SimEndpoint::send(TrackId track, const GatherList& gl,
                       std::uint64_t token) {
  MADO_CHECK_MSG(track < caps_.track_count,
                 "track " << int(track) << " out of range for " << caps_.name);
  MADO_CHECK(link_->handler[side_] != nullptr);

  // Materialize the payload now: segment buffers are only guaranteed valid
  // until on_send_complete, and delivery happens after that.
  Bytes payload = gl.flatten();
  const std::size_t bytes = payload.size();

  // Charge segment handling per the capabilities: a gather-capable NIC pays
  // per-segment overhead; otherwise the host flattens first (memcpy cost).
  const sim::NicModel model(caps_.cost);
  std::size_t nsegs = gl.segment_count();
  Nanos flatten_cost = 0;
  const bool needs_flatten =
      nsegs > 1 &&
      (!caps_.gather_scatter || nsegs > caps_.max_gather_segments);
  if (needs_flatten) {
    flatten_cost = model.copy_time(bytes);
    nsegs = 1;
    ++flatten_copies_;
  }

  const Nanos busy = flatten_cost + model.busy_time(bytes, nsegs);
  const int d = side_;  // direction side_ -> peer
  const Nanos start = std::max(fabric_.now(), link_->link_free[d]);
  const Nanos accept = start + busy;
  link_->link_free[d] = accept;
  const Nanos deliver = accept + model.propagation_latency();

  ++packets_sent_;
  bytes_sent_ += bytes;
  MADO_TRACE("sim[" << caps_.name << "/" << d << "] send track="
                    << int(track) << " bytes=" << bytes << " segs=" << nsegs
                    << " accept@" << accept << " deliver@" << deliver);

  auto link = link_;
  const int me = side_;
  // The local NIC always accepts the packet (wire faults happen after the
  // DMA): completions fire even on lossy links, and on a dead link too —
  // the engine marks the rail Down from on_link_down and ignores them.
  fabric_.post_at(accept, [link, me, track, token] {
    if (link->alive[me] && link->handler[me])
      link->handler[me]->on_send_complete(track, token);
  });

  // Fault injection on the wire (this TX direction only).
  Nanos deliver_at = deliver;
  bool deliver_dup = false;
  const FaultPlan& plan = link->plan[d];
  if (plan.active() && !link->failed) {
    Rng& rng = link->rng[d];
    FaultStats& fs = link->faults[d];
    if (plan.drop > 0 && rng.chance(plan.drop)) {
      ++fs.dropped;
      MADO_TRACE("sim[" << caps_.name << "/" << d << "] DROP token=" << token);
      return;  // vanished in transit; completion above still fires
    }
    if (plan.corrupt > 0 && rng.chance(plan.corrupt) && bytes > 0) {
      const std::size_t at = rng.below(bytes);
      payload[at] = static_cast<Byte>(payload[at] ^ (1u << rng.below(8)));
      ++fs.corrupted;
      MADO_TRACE("sim[" << caps_.name << "/" << d << "] CORRUPT token="
                        << token << " byte=" << at);
    }
    if (plan.duplicate > 0 && rng.chance(plan.duplicate)) {
      ++fs.duplicated;
      deliver_dup = true;
    }
    if (plan.reorder > 0 && rng.chance(plan.reorder)) {
      // Push this delivery past packets sent after it: tracks are FIFO in
      // the fabric only by timestamp, so a later deadline = reordering.
      deliver_at += plan.reorder_delay;
      ++fs.reordered;
      MADO_TRACE("sim[" << caps_.name << "/" << d << "] REORDER token="
                        << token << " deliver@" << deliver_at);
    }
  }

  const int peer = 1 - side_;
  if (deliver_dup) {
    Bytes copy = payload;
    fabric_.post_at(deliver_at + 1,
                    [link, peer, track, p = std::move(copy)]() mutable {
                      if (!link->failed && link->alive[peer] &&
                          link->handler[peer])
                        link->handler[peer]->on_packet(track, std::move(p));
                    });
  }
  fabric_.post_at(deliver_at,
                  [link, peer, track, p = std::move(payload)]() mutable {
                    if (!link->failed && link->alive[peer] &&
                        link->handler[peer])
                      link->handler[peer]->on_packet(track, std::move(p));
                  });
}

std::string SimEndpoint::describe() const {
  std::ostringstream os;
  os << "sim:" << caps_.name << "[side " << side_ << "]";
  return os.str();
}

}  // namespace mado::drv
