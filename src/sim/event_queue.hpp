// Discrete-event queue with a stable tie-break: events posted earlier run
// earlier among equal timestamps, which keeps simulations deterministic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/clock.hpp"

namespace mado::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  struct Event {
    Nanos time = 0;
    std::uint64_t seq = 0;
    Action action;
  };

  void post_at(Nanos t, Action fn) {
    heap_.push_back(Event{t, seq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  Nanos next_time() const {
    MADO_ASSERT(!heap_.empty());
    return heap_.front().time;
  }

  /// Pop and return the earliest event. The caller advances the clock to
  /// event.time and then runs event.action; running it inside pop() would
  /// make reentrant post_at calls racy with the heap manipulation.
  Event pop() {
    MADO_ASSERT(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };
  std::vector<Event> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace mado::sim
