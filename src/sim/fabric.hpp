// Fabric: the shared discrete-event world connecting simulated drivers.
//
// One Fabric instance holds the virtual clock and the event queue for all
// simulated nodes in a test/benchmark. Drivers post timed actions (send
// completions, packet deliveries, Nagle timers); the test harness pumps the
// loop with step()/run_until_idle(). Everything is single-threaded and
// deterministic.
#pragma once

#include <cstddef>
#include <functional>

#include "sim/event_queue.hpp"
#include "util/clock.hpp"

namespace mado::sim {

class Fabric {
 public:
  Nanos now() const { return clock_.now(); }
  const Clock& clock() const { return clock_; }

  void post_at(Nanos t, EventQueue::Action fn) {
    events_.post_at(t < clock_.now() ? clock_.now() : t, std::move(fn));
  }
  void post_in(Nanos dt, EventQueue::Action fn) {
    events_.post_at(clock_.now() + dt, std::move(fn));
  }

  bool has_events() const { return !events_.empty(); }
  Nanos next_event_time() const { return events_.next_time(); }

  /// Run the earliest event (advancing the clock). Returns false if idle.
  bool step() {
    if (events_.empty()) return false;
    auto ev = events_.pop();
    clock_.advance_to(ev.time);
    ev.action();
    return true;
  }

  /// Run events until the queue drains or `max_events` is hit (a runaway
  /// guard for tests). Returns the number of events executed.
  std::size_t run_until_idle(std::size_t max_events = 100'000'000) {
    std::size_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  /// Run all events with time <= t, then advance the clock to exactly t.
  void run_until(Nanos t) {
    while (!events_.empty() && events_.next_time() <= t) step();
    clock_.advance_to(t);
  }

  /// Run until `pred` becomes true or the queue drains. Returns pred().
  bool run_while_pending(const std::function<bool()>& pred) {
    while (!pred() && step()) {
    }
    return pred();
  }

 private:
  VirtualClock clock_;
  EventQueue events_;
};

}  // namespace mado::sim
