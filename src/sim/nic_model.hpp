// LogGP-style NIC/link cost model.
//
// The same model serves two purposes:
//   1. The simulated driver uses it to charge time for each send (how long
//      the NIC stays busy, when bytes land at the receiver).
//   2. Optimization strategies use it to *score* candidate packet
//      rearrangements ("bounding the number of data rearrangements the
//      optimizer has to evaluate so as to determine the best combination",
//      paper §4) — strategies and simulator agreeing on the cost model is
//      what makes the optimizer's decisions meaningful.
//
// Cost of injecting one packet of `bytes` payload spread over `nsegs`
// gather segments:
//
//   inject(bytes, nsegs) = o_mode + (nsegs - 1) * o_seg [if gather used]
//                          + bytes / B_host
//   wire(bytes)          = bytes / B_link
//   busy                 = max(inject, wire occupancy) + gap
//   delivery             = wire-accept time + L (propagation latency)
//
// where o_mode is o_pio below pio_threshold and o_dma above (PIO has a tiny
// setup cost but consumes host cycles per byte; DMA pays a setup cost and
// then streams at link rate — the classic high-speed-NIC tradeoff the paper
// says optimizations must be parameterized by).
#pragma once

#include <cstddef>

#include "util/clock.hpp"

namespace mado::sim {

struct NicModelParams {
  // Host-side injection overheads.
  Nanos pio_overhead = 300;        ///< per-send setup cost in PIO mode
  Nanos dma_overhead = 1200;       ///< per-send setup cost in DMA mode
  Nanos per_segment = 80;          ///< extra cost per gather segment beyond 1
  std::size_t pio_threshold = 128; ///< payload bytes; <= threshold uses PIO

  // Bandwidths in bytes/microsecond (easier to read than bytes/ns).
  double pio_bytes_per_us = 350.0;  ///< host PIO store rate
  double link_bytes_per_us = 2000.0;///< link rate (2000 B/us = 2 GB/s)

  Nanos gap = 100;       ///< minimum spacing between consecutive injections
  Nanos latency = 2000;  ///< one-way propagation + rx handling latency

  /// Host memcpy rate, charged when a multi-segment packet must be
  /// flattened because the NIC lacks gather/scatter support.
  double copy_bytes_per_us = 4000.0;
};

class NicModel {
 public:
  explicit NicModel(const NicModelParams& p) : p_(p) {}

  bool uses_pio(std::size_t bytes) const { return bytes <= p_.pio_threshold; }

  /// Time the NIC (sender side) is busy injecting one packet.
  Nanos busy_time(std::size_t bytes, std::size_t nsegs) const {
    const Nanos inject = injection_time(bytes, nsegs);
    const Nanos wire = wire_time(bytes);
    return (inject > wire ? inject : wire) + p_.gap;
  }

  /// Host-side cost of the injection alone (used for strategy scoring where
  /// the question is "how many host transactions do we pay").
  Nanos injection_time(std::size_t bytes, std::size_t nsegs) const {
    if (nsegs == 0) nsegs = 1;
    const Nanos seg_cost =
        static_cast<Nanos>(nsegs - 1) * p_.per_segment;
    if (uses_pio(bytes)) {
      return p_.pio_overhead + seg_cost +
             static_cast<Nanos>(static_cast<double>(bytes) * 1000.0 /
                                p_.pio_bytes_per_us);
    }
    return p_.dma_overhead + seg_cost;
  }

  /// Wire occupancy of `bytes` on the link.
  Nanos wire_time(std::size_t bytes) const {
    return static_cast<Nanos>(static_cast<double>(bytes) * 1000.0 /
                              p_.link_bytes_per_us);
  }

  /// Host memcpy cost for flattening `bytes` (no-gather NICs).
  Nanos copy_time(std::size_t bytes) const {
    return static_cast<Nanos>(static_cast<double>(bytes) * 1000.0 /
                              p_.copy_bytes_per_us);
  }

  Nanos propagation_latency() const { return p_.latency; }
  Nanos gap() const { return p_.gap; }
  const NicModelParams& params() const { return p_; }

 private:
  NicModelParams p_;
};

}  // namespace mado::sim
